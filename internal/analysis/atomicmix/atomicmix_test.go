package atomicmix_test

import (
	"testing"

	"github.com/reprolab/face/internal/analysis/analysistest"
	"github.com/reprolab/face/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata/src", atomicmix.Analyzer, "a")
}
