// Package atomic is a minimal stand-in for sync/atomic; the analyzer
// keys on the package path and function name prefixes.
package atomic

// LoadUint64 atomically loads *addr.
func LoadUint64(addr *uint64) uint64 { return *addr }

// StoreUint64 atomically stores val into *addr.
func StoreUint64(addr *uint64, val uint64) { *addr = val }

// AddUint64 atomically adds delta to *addr.
func AddUint64(addr *uint64, delta uint64) uint64 { *addr += delta; return *addr }

// CompareAndSwapUint64 performs a CAS on *addr.
func CompareAndSwapUint64(addr *uint64, old, new uint64) bool { return false }

// Uint64 is a typed atomic; its methods take no address, so mixing is
// impossible by construction and the analyzer ignores it.
type Uint64 struct{ v uint64 }

// Load atomically loads the value.
func (x *Uint64) Load() uint64 { return x.v }

// Store atomically stores val.
func (x *Uint64) Store(val uint64) { x.v = val }

// Add atomically adds delta.
func (x *Uint64) Add(delta uint64) uint64 { x.v += delta; return x.v }
