// Golden cases for the atomicmix analyzer.
package a

import "sync/atomic"

// WAL mixes three disciplines: seq is used through sync/atomic (so every
// access must be), next is plain everywhere (fine), tick is a typed
// atomic (safe by construction).
type WAL struct {
	seq  uint64
	next uint64
	tick atomic.Uint64
}

// Reserve is the atomic use that marks seq.
func (w *WAL) Reserve() uint64 {
	return atomic.AddUint64(&w.seq, 1)
}

func (w *WAL) TryReset(old uint64) bool {
	return atomic.CompareAndSwapUint64(&w.seq, old, 0)
}

func (w *WAL) Peek() uint64 {
	return w.seq // want `plain read of seq, which is accessed with sync/atomic elsewhere`
}

func (w *WAL) Reset() {
	w.seq = 0 // want `plain write of seq`
}

func (w *WAL) Bump() {
	w.seq++ // want `plain write of seq`
}

func (w *WAL) Escape() *uint64 {
	return &w.seq // want `address escape of seq`
}

// The forms below produce no diagnostics.

func (w *WAL) PlainCounter() uint64 {
	w.next++
	return w.next
}

func (w *WAL) Typed() uint64 {
	return w.tick.Add(1)
}

// NewWAL: a composite-literal key names the field without accessing it.
func NewWAL() *WAL {
	return &WAL{seq: 0}
}

func (w *WAL) DebugPeek() uint64 {
	//lint:allow facevet/atomicmix single-threaded test hook, no concurrent writers exist when it runs
	return w.seq
}

var global uint64

// LoadGlobal marks the package-level var.
func LoadGlobal() uint64 {
	return atomic.LoadUint64(&global)
}

func ReadGlobalPlain() uint64 {
	return global // want `plain read of global`
}
