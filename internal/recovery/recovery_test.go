package recovery

import (
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/page"
	"github.com/reprolab/face/internal/wal"
)

// fakePager is an in-memory page store for driving Run directly.
type fakePager struct {
	pages map[page.ID]page.Buf
	dirty map[page.ID]bool
	gets  int
}

func newFakePager() *fakePager {
	return &fakePager{pages: make(map[page.ID]page.Buf), dirty: make(map[page.ID]bool)}
}

func (p *fakePager) Get(id page.ID) (page.Buf, error) {
	p.gets++
	buf, ok := p.pages[id]
	if !ok {
		buf = page.NewBuf()
		buf.SetID(id)
		p.pages[id] = buf
	}
	return buf, nil
}

func (p *fakePager) Unpin(id page.ID) error     { return nil }
func (p *fakePager) MarkDirty(id page.ID) error { p.dirty[id] = true; return nil }

func newLog(t *testing.T) *wal.Manager {
	t.Helper()
	m, err := wal.Open(device.New("log", device.ProfileCheetah15K, 4096))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRedoAppliesMissingUpdates(t *testing.T) {
	log := newLog(t)
	pager := newFakePager()

	// Committed transaction 1 updates page 5 twice.
	log.Append(&wal.Record{Type: wal.TypeUpdate, TxID: 1, PageID: 5, Offset: 100, Before: []byte{0}, After: []byte{1}})
	log.Append(&wal.Record{Type: wal.TypeUpdate, TxID: 1, PageID: 5, Offset: 200, Before: []byte{0}, After: []byte{2}})
	log.Append(&wal.Record{Type: wal.TypeCommit, TxID: 1})
	// Loser transaction 2 updates page 6 but never commits.
	log.Append(&wal.Record{Type: wal.TypeUpdate, TxID: 2, PageID: 6, Offset: 300, Before: []byte{9}, After: []byte{7}})
	if err := log.ForceAll(); err != nil {
		t.Fatal(err)
	}
	// Page 6 already contains the loser's change (it reached disk).
	buf, _ := pager.Get(6)
	buf[300] = 7
	buf.SetLSN(1 << 30)

	rep, err := Run(log, pager)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoApplied != 2 || rep.RedoSkipped != 1 {
		t.Fatalf("redo applied/skipped = %d/%d, want 2/1", rep.RedoApplied, rep.RedoSkipped)
	}
	if rep.WinnerTxns != 1 || rep.LoserTxns != 1 || rep.UndoApplied != 1 {
		t.Fatalf("winners/losers/undo = %d/%d/%d", rep.WinnerTxns, rep.LoserTxns, rep.UndoApplied)
	}
	p5, _ := pager.Get(5)
	if p5[100] != 1 || p5[200] != 2 {
		t.Fatal("committed updates not redone")
	}
	p6, _ := pager.Get(6)
	if p6[300] != 9 {
		t.Fatalf("loser update not undone: byte = %d", p6[300])
	}
	if !pager.dirty[5] || !pager.dirty[6] {
		t.Fatal("recovered pages not marked dirty")
	}
	if rep.MaxPageID != 6 || rep.RecordsScanned != 4 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestRedoIsIdempotent(t *testing.T) {
	log := newLog(t)
	pager := newFakePager()
	// A leading system record keeps the update off LSN 0, which redo treats
	// as "page never written".
	log.Append(&wal.Record{Type: wal.TypeCommit, TxID: 0})
	log.Append(&wal.Record{Type: wal.TypeUpdate, TxID: 1, PageID: 3, Offset: 64, Before: []byte{0}, After: []byte{5}})
	log.Append(&wal.Record{Type: wal.TypeCommit, TxID: 1})
	log.ForceAll()

	if _, err := Run(log, pager); err != nil {
		t.Fatal(err)
	}
	firstGets := pager.gets
	rep, err := Run(log, pager)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedoApplied != 0 || rep.RedoSkipped != 1 {
		t.Fatalf("second run applied %d, skipped %d", rep.RedoApplied, rep.RedoSkipped)
	}
	if pager.gets <= firstGets {
		t.Fatal("second run did not scan the log")
	}
	buf, _ := pager.Get(3)
	if buf[64] != 5 {
		t.Fatal("value changed by repeated recovery")
	}
}

func TestFullPageRedoAndCheckpointStart(t *testing.T) {
	log := newLog(t)
	pager := newFakePager()

	// Records before the checkpoint must not be replayed.
	log.Append(&wal.Record{Type: wal.TypeUpdate, TxID: 1, PageID: 2, Offset: 50, Before: []byte{0}, After: []byte{9}})
	log.Append(&wal.Record{Type: wal.TypeCommit, TxID: 1})
	begin, _ := log.LogCheckpointBegin()
	if err := log.LogCheckpointEnd(begin); err != nil {
		t.Fatal(err)
	}

	img := page.NewBuf()
	img.Init(7, page.TypeHeap)
	img.Payload()[0] = 0xEE
	log.Append(&wal.Record{Type: wal.TypeFullPage, TxID: 2, PageID: 7, After: img})
	log.Append(&wal.Record{Type: wal.TypeCommit, TxID: 2})
	log.ForceAll()

	rep, err := Run(log, pager)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartLSN != begin {
		t.Fatalf("StartLSN = %d, want %d", rep.StartLSN, begin)
	}
	if _, touched := pager.dirty[2]; touched {
		t.Fatal("pre-checkpoint record replayed")
	}
	p7, _ := pager.Get(7)
	if p7.Payload()[0] != 0xEE || p7.Type() != page.TypeHeap {
		t.Fatal("full-page image not restored")
	}
}
