// Package recovery implements database restart after a crash.
//
// The FaCE system follows the two classic recovery principles (Section 4 of
// the paper): write-ahead logging and commit-time log force.  Restart
// therefore performs an ARIES-style pass over the log from the most recent
// completed checkpoint:
//
//  1. redo every page-level change whose effects are missing from the
//     persistent database (flash cache ∪ disk), and
//  2. undo the changes of loser transactions (those without a commit or
//     abort record).
//
// The package is deliberately independent of the engine: pages are accessed
// through the Pager interface, which the engine backs with its buffer pool
// so that recovery reads are served from the flash cache whenever possible.
// That is precisely the mechanism that makes FaCE restarts fast (Table 6 /
// Figure 6 of the paper): most pages needed during recovery are found in
// flash rather than behind random disk reads.
package recovery

import (
	"fmt"

	"github.com/reprolab/face/internal/page"
	"github.com/reprolab/face/internal/wal"
)

// Pager provides page access during recovery.  Get pins the page; Unpin
// releases it; MarkDirty flags it as modified so it reaches the persistent
// database through the normal eviction/checkpoint paths.
type Pager interface {
	Get(id page.ID) (page.Buf, error)
	Unpin(id page.ID) error
	MarkDirty(id page.ID) error
}

// Report summarises what restart did.
type Report struct {
	// StartLSN is the LSN recovery scanned from (the last completed
	// checkpoint, or 0).
	StartLSN page.LSN
	// RecordsScanned is the number of log records examined.
	RecordsScanned int
	// RedoApplied is the number of changes reapplied because the
	// persistent page was older than the log record.
	RedoApplied int
	// RedoSkipped is the number of changes already reflected in the
	// persistent page (its pageLSN was current).
	RedoSkipped int
	// UndoApplied is the number of changes rolled back for loser
	// transactions.
	UndoApplied int
	// WinnerTxns and LoserTxns count transactions that did and did not
	// reach their commit record before the crash.
	WinnerTxns int
	LoserTxns  int
	// MaxPageID is the largest page id seen in the log, used by the
	// engine to restore its page allocator.
	MaxPageID page.ID
}

// Run performs redo and undo.  It returns a report of the work done.
func Run(log *wal.Manager, pager Pager) (Report, error) {
	var rep Report
	rep.StartLSN = log.LastCheckpoint()

	type txState struct {
		updates []*wal.Record
		ended   bool
	}
	txs := make(map[wal.TxID]*txState)
	state := func(id wal.TxID) *txState {
		s, ok := txs[id]
		if !ok {
			s = &txState{}
			txs[id] = s
		}
		return s
	}

	err := log.Iterate(rep.StartLSN, func(r *wal.Record) error {
		rep.RecordsScanned++
		switch r.Type {
		case wal.TypeUpdate, wal.TypeFullPage:
			if r.PageID > rep.MaxPageID {
				rep.MaxPageID = r.PageID
			}
			if r.TxID != 0 {
				state(r.TxID).updates = append(state(r.TxID).updates, r)
			}
			return redo(pager, r, &rep)
		case wal.TypeCommit, wal.TypeAbort:
			state(r.TxID).ended = true
		case wal.TypeCheckpointBegin, wal.TypeCheckpointEnd:
			// Checkpoint records carry no page changes.
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("recovery: redo pass: %w", err)
	}

	// Undo losers in reverse order of their updates.
	for _, s := range txs {
		if s.ended {
			if len(s.updates) > 0 {
				rep.WinnerTxns++
			}
			continue
		}
		if len(s.updates) == 0 {
			continue
		}
		rep.LoserTxns++
		for i := len(s.updates) - 1; i >= 0; i-- {
			r := s.updates[i]
			if r.Type != wal.TypeUpdate || len(r.Before) == 0 {
				// Full-page records (page formatting) are not undone: a
				// freshly allocated page left behind by a loser is
				// unreachable and harmless.
				continue
			}
			if err := undo(pager, r, &rep); err != nil {
				return rep, fmt.Errorf("recovery: undo pass: %w", err)
			}
		}
	}
	return rep, nil
}

// redo reapplies a logged change when the persistent page is older than the
// record.
func redo(pager Pager, r *wal.Record, rep *Report) error {
	buf, err := pager.Get(r.PageID)
	if err != nil {
		return fmt.Errorf("reading page %d: %w", r.PageID, err)
	}
	defer pager.Unpin(r.PageID)
	if buf.LSN() >= r.LSN && buf.LSN() != 0 {
		rep.RedoSkipped++
		return nil
	}
	switch r.Type {
	case wal.TypeFullPage:
		copy(buf, r.After)
	case wal.TypeUpdate:
		if int(r.Offset)+len(r.After) > page.Size {
			return fmt.Errorf("update record for page %d overflows the page", r.PageID)
		}
		copy(buf[r.Offset:], r.After)
	}
	buf.SetLSN(r.LSN)
	if err := pager.MarkDirty(r.PageID); err != nil {
		return err
	}
	rep.RedoApplied++
	return nil
}

// undo restores the before image of a loser transaction's change.
func undo(pager Pager, r *wal.Record, rep *Report) error {
	buf, err := pager.Get(r.PageID)
	if err != nil {
		return fmt.Errorf("reading page %d: %w", r.PageID, err)
	}
	defer pager.Unpin(r.PageID)
	if int(r.Offset)+len(r.Before) > page.Size {
		return fmt.Errorf("undo record for page %d overflows the page", r.PageID)
	}
	copy(buf[r.Offset:], r.Before)
	buf.SetLSN(r.LSN)
	if err := pager.MarkDirty(r.PageID); err != nil {
		return err
	}
	rep.UndoApplied++
	return nil
}
