//go:build unix

package filedev

import (
	"errors"
	"os"
	"syscall"
)

// errWouldBlock is the sentinel lockDir matches to report ErrLocked.
var errWouldBlock = error(syscall.EWOULDBLOCK)

// dirSyncStrict: unix filesystems support fsync on a directory fd, so a
// failure there is a real durability problem and fails the open.
const dirSyncStrict = true

// flockExclusive takes a non-blocking exclusive flock on f.  The kernel
// releases it when the descriptor closes — including on process death —
// so a killed instance never wedges its directory.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return errWouldBlock
	}
	return err
}
