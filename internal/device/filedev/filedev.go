// Package filedev implements the device.Dev interface over ordinary OS
// files: every block lives at a fixed byte offset of one file, reads and
// writes are positioned I/O (pread/pwrite), and durability is an explicit
// Sync (fsync) barrier instead of the simulated devices' implicit
// persistence.
//
// Unlike the simulated devices in the parent package, a file-backed device
// has no latency model: its statistics accumulate the real wall-clock time
// spent inside I/O system calls, so BusyTime and the derived utilization
// figures describe the host storage, not the paper's hardware.  The
// operation counters keep the same random/sequential classification rules
// as the simulated devices so reports stay comparable.
//
// Run operations (ReadRun/WriteRun) can be split across a bounded worker
// pool (Options.Workers); Parallelism reports the pool width so the
// elapsed-time model divides busy time the same way it does for a striped
// array.  Files are written sparsely: capacity is a logical bound checked
// on every access, and blocks never written read back as zeros, exactly
// like the lazily materialised simulated devices.
package filedev

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/reprolab/face/internal/device"
)

// ErrClosed is returned by operations on a closed device.
var ErrClosed = errors.New("filedev: device is closed")

// minParallelRun is the smallest run split across the worker pool; shorter
// runs are served by a single positioned read/write, whose syscall cost
// they would not amortise.
const minParallelRun = 8

// Options configures a file-backed device.
type Options struct {
	// Workers bounds the number of run-operation chunks the device issues
	// concurrently and is reported as the device's Parallelism (<= 0: 1).
	Workers int
	// NoFsync makes Sync a no-op.  The device still counts the sync
	// requests, so tests can assert the barrier points either way.
	NoFsync bool
}

// Device is a file-backed block device.
type Device struct {
	name      string
	path      string
	f         *os.File
	numBlocks int64
	workers   int
	fsync     bool
	// sem bounds the run-operation chunks in flight across all callers.
	sem chan struct{}

	// mu guards the counters below; it is never held across file I/O.
	mu        sync.Mutex
	stats     device.Stats
	syncs     int64
	lastRead  int64
	lastWrite int64
	closed    bool
	// syncErr makes a failed fsync sticky: the kernel may drop the dirty
	// pages after reporting the error once (fsyncgate), so a later Sync
	// that "succeeds" would vouch for writes that were silently lost.
	// Once the barrier fails, every subsequent Sync fails too.
	syncErr error
}

var (
	_ device.Dev    = (*Device)(nil)
	_ device.Syncer = (*Device)(nil)
)

// Open creates or opens the file at path as a block device of numBlocks
// blocks.  An existing file keeps its contents (that is the reopen-after-
// crash path); a fresh file starts all zeros and grows sparsely as blocks
// are written.
func Open(name, path string, numBlocks int64, opts Options) (*Device, error) {
	if numBlocks < 1 {
		return nil, fmt.Errorf("filedev: %s: capacity must be at least 1 block, got %d", name, numBlocks)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filedev: opening %s: %w", path, err)
	}
	return &Device{
		name:      name,
		path:      path,
		f:         f,
		numBlocks: numBlocks,
		workers:   workers,
		fsync:     !opts.NoFsync,
		sem:       make(chan struct{}, workers),
		lastRead:  -2,
		lastWrite: -2,
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Path returns the backing file path.
func (d *Device) Path() string { return d.path }

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() int64 { return d.numBlocks }

// Parallelism returns the worker pool width.
func (d *Device) Parallelism() int { return d.workers }

// Fsync reports whether Sync performs a real fsync.
func (d *Device) Fsync() bool { return d.fsync }

// checkOpen returns ErrClosed once Close has been called.
func (d *Device) checkOpen() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// readFull reads len(p) bytes at off, zero-filling past end of file so
// never-written (sparse) blocks behave like the simulated devices' lazily
// materialised ones.
func (d *Device) readFull(off int64, p []byte) error {
	n, err := d.f.ReadAt(p, off)
	if err == io.EOF || (err == nil && n == len(p)) {
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("filedev: reading %s at %d: %w", d.name, off, err)
	}
	return nil
}

// ReadAt reads block blk into p.
func (d *Device) ReadAt(blk int64, p []byte) error {
	if len(p) < device.BlockSize {
		return device.ErrShortBuffer
	}
	if blk < 0 || blk >= d.numBlocks {
		return fmt.Errorf("%w: read block %d of %d (%s)", device.ErrOutOfRange, blk, d.numBlocks, d.name)
	}
	if err := d.checkOpen(); err != nil {
		return err
	}
	start := time.Now()
	err := d.readFull(blk*device.BlockSize, p[:device.BlockSize])
	elapsed := time.Since(start)
	d.mu.Lock()
	seq := blk == d.lastRead+1
	d.lastRead = blk
	d.noteLocked(false, seq, 1, elapsed)
	d.mu.Unlock()
	return err
}

// WriteAt writes block blk from p.
func (d *Device) WriteAt(blk int64, p []byte) error {
	if len(p) < device.BlockSize {
		return device.ErrShortBuffer
	}
	if blk < 0 || blk >= d.numBlocks {
		return fmt.Errorf("%w: write block %d of %d (%s)", device.ErrOutOfRange, blk, d.numBlocks, d.name)
	}
	if err := d.checkOpen(); err != nil {
		return err
	}
	start := time.Now()
	_, err := d.f.WriteAt(p[:device.BlockSize], blk*device.BlockSize)
	elapsed := time.Since(start)
	d.mu.Lock()
	seq := blk == d.lastWrite+1
	d.lastWrite = blk
	d.noteLocked(true, seq, 1, elapsed)
	d.mu.Unlock()
	if err != nil {
		return fmt.Errorf("filedev: writing %s at block %d: %w", d.name, blk, err)
	}
	return nil
}

// ReadRun reads n consecutive blocks starting at blk, invoking fn for each
// block in order.  Long runs are read by the worker pool in parallel
// chunks; fn always sees the blocks sequentially.
func (d *Device) ReadRun(blk int64, n int, fn func(i int, p []byte) error) error {
	if n <= 0 {
		return nil
	}
	if blk < 0 || blk+int64(n) > d.numBlocks {
		return fmt.Errorf("%w: read run [%d,%d) of %d (%s)", device.ErrOutOfRange, blk, blk+int64(n), d.numBlocks, d.name)
	}
	if err := d.checkOpen(); err != nil {
		return err
	}
	buf := make([]byte, n*device.BlockSize)
	elapsed, err := d.runChunks(n, func(lo, hi int) error {
		return d.readFull((blk+int64(lo))*device.BlockSize, buf[lo*device.BlockSize:hi*device.BlockSize])
	})
	d.mu.Lock()
	d.lastRead = blk + int64(n) - 1
	d.noteLocked(false, true, n, elapsed)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := fn(i, buf[i*device.BlockSize:(i+1)*device.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes len(pages) consecutive blocks starting at blk.  Long
// runs are coalesced into per-chunk buffers and written by the worker pool
// in parallel.
func (d *Device) WriteRun(blk int64, pages [][]byte) error {
	n := len(pages)
	if n == 0 {
		return nil
	}
	for i, p := range pages {
		if len(p) < device.BlockSize {
			return fmt.Errorf("%w: run element %d", device.ErrShortBuffer, i)
		}
	}
	if blk < 0 || blk+int64(n) > d.numBlocks {
		return fmt.Errorf("%w: write run [%d,%d) of %d (%s)", device.ErrOutOfRange, blk, blk+int64(n), d.numBlocks, d.name)
	}
	if err := d.checkOpen(); err != nil {
		return err
	}
	elapsed, err := d.runChunks(n, func(lo, hi int) error {
		chunk := make([]byte, (hi-lo)*device.BlockSize)
		for i := lo; i < hi; i++ {
			copy(chunk[(i-lo)*device.BlockSize:], pages[i][:device.BlockSize])
		}
		if _, err := d.f.WriteAt(chunk, (blk+int64(lo))*device.BlockSize); err != nil {
			return fmt.Errorf("filedev: writing %s run at block %d: %w", d.name, blk+int64(lo), err)
		}
		return nil
	})
	d.mu.Lock()
	d.lastWrite = blk + int64(n) - 1
	d.noteLocked(true, true, n, elapsed)
	d.mu.Unlock()
	return err
}

// runChunks splits [0, n) into up to Workers contiguous chunks and runs op
// on each through the bounded pool, returning the first error and the SUM
// of the per-chunk I/O times.  The sum — not the overlapped wall elapsed —
// is what feeds Stats.Busy, matching the striped-array convention the
// elapsed-time model divides by Parallelism.
func (d *Device) runChunks(n int, op func(lo, hi int) error) (time.Duration, error) {
	if d.workers == 1 || n < minParallelRun {
		start := time.Now()
		err := op(0, n)
		return time.Since(start), err
	}
	chunks := d.workers
	if chunks > n {
		chunks = n
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	var busy time.Duration
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		d.sem <- struct{}{}
		wg.Add(1)
		go func(lo, hi int) {
			defer func() {
				<-d.sem
				wg.Done()
			}()
			start := time.Now()
			err := op(lo, hi)
			elapsed := time.Since(start)
			mu.Lock()
			busy += elapsed
			if err != nil && first == nil {
				first = err
			}
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return busy, first
}

// Sync flushes all written blocks to stable storage (fsync).  With
// Options.NoFsync it only counts the request.  The engine calls it from
// the write-ahead log force, the destage watermark and the checkpoint
// paths, which is what makes group commit and the flash cache's
// destage-before-front-advance invariant genuinely durable on real media.
func (d *Device) Sync() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.syncErr != nil {
		err := d.syncErr
		// Still a barrier request: Syncs() counts them regardless of
		// outcome.
		d.syncs++
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()
	var err error
	var elapsed time.Duration
	if d.fsync {
		start := time.Now()
		err = d.f.Sync()
		elapsed = time.Since(start)
	}
	d.mu.Lock()
	d.syncs++
	d.stats.Busy += elapsed
	if err != nil {
		// Sticky: a post-failure fsync cannot retroactively cover the
		// writes the kernel may already have discarded.
		d.syncErr = fmt.Errorf("filedev: syncing %s: %w", d.name, err)
		err = d.syncErr
	}
	d.mu.Unlock()
	return err
}

// Syncs returns the number of Sync calls (durability barriers requested),
// whether or not fsync is enabled.
func (d *Device) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Stats returns a snapshot of the accumulated statistics.  Busy is real
// wall-clock time spent in I/O system calls (including fsync).
func (d *Device) Stats() device.Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats clears the statistics; file contents are untouched.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = device.Stats{}
	d.syncs = 0
	d.lastRead, d.lastWrite = -2, -2
}

// BusyTime returns the accumulated wall-clock I/O time.
func (d *Device) BusyTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Busy
}

// noteLocked records one command of n blocks.  Callers hold d.mu.
func (d *Device) noteLocked(write, seq bool, n int, elapsed time.Duration) {
	d.stats.Busy += elapsed
	switch {
	case write && seq:
		d.stats.SeqWrites += int64(n)
	case write:
		d.stats.RandWrites += int64(n)
	case seq:
		d.stats.SeqReads += int64(n)
	default:
		d.stats.RandReads += int64(n)
	}
}

// LoadLogical writes the given logical block images (index = block number)
// into the file, syncs, and resets the statistics.  It is the file-backed
// equivalent of the simulated devices' content cloning, used by the
// benchmark harness to install a pre-loaded database image.
func (d *Device) LoadLogical(blocks [][]byte) error {
	if int64(len(blocks)) > d.numBlocks {
		return fmt.Errorf("filedev: %s: image of %d blocks exceeds capacity %d", d.name, len(blocks), d.numBlocks)
	}
	// Write maximal contiguous non-nil runs so the load is a few large
	// writes instead of one syscall per page.
	i := 0
	for i < len(blocks) {
		if blocks[i] == nil {
			i++
			continue
		}
		j := i
		for j < len(blocks) && blocks[j] != nil {
			j++
		}
		if err := d.WriteRun(int64(i), blocks[i:j]); err != nil {
			return err
		}
		i = j
	}
	if err := d.Sync(); err != nil {
		return err
	}
	d.ResetStats()
	return nil
}

// Close releases the backing file handle.  It deliberately does NOT sync:
// durability barriers are explicit (Sync), so a crash-simulating close
// behaves like a process kill — whatever the engine synced is durable,
// everything else is at the mercy of the OS.  Further operations return
// ErrClosed; Close is idempotent.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("filedev: closing %s: %w", d.name, err)
	}
	return nil
}
