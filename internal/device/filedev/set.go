package filedev

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// File names of the devices inside a database directory.
const (
	DataFile  = "data.db"
	LogFile   = "wal.log"
	FlashFile = "flash.cache"
	// LockName is the advisory lock file guarding the directory against a
	// second concurrent opener.
	LockName = "LOCK"
)

// ErrLocked is returned by OpenSet when another live process (or another
// Set in this process) holds the directory.
var ErrLocked = errors.New("filedev: database directory is locked by another instance")

// Default capacities used when SetConfig leaves a size at zero.  Files are
// sparse, so generous logical capacities cost no disk space until written.
const (
	// DefaultDataBlocks is 4 GiB of 4 KiB pages.
	DefaultDataBlocks = 1 << 20
	// DefaultLogBlocks is 1 GiB of write-ahead log.
	DefaultLogBlocks = 1 << 18
)

// SetConfig sizes and configures the device set of a database directory.
type SetConfig struct {
	// DataBlocks, LogBlocks and FlashBlocks are the device capacities (0 =
	// DefaultDataBlocks / DefaultLogBlocks; FlashBlocks 0 opens no flash
	// device).
	DataBlocks, LogBlocks, FlashBlocks int64
	// Workers is the data device's worker pool width / Parallelism (<= 0:
	// 1).  The log is always sequential (1 worker); the flash device gets
	// min(Workers, 2).
	Workers int
	// NoFsync disables the fsync durability barrier on all three devices.
	NoFsync bool
}

// Set is the trio of file-backed devices a database directory holds.
// Flash is nil when SetConfig.FlashBlocks was zero.
type Set struct {
	Dir   string
	Data  *Device
	Log   *Device
	Flash *Device
	// Existed reports whether the directory already contained an
	// initialised data file, i.e. this open is a reopen (the recovery
	// path) rather than a fresh create.
	Existed bool

	// lock holds the flock on the directory's LOCK file for the Set's
	// lifetime.  The kernel releases it when the file closes — including
	// on process death — so a killed instance never wedges its directory.
	lock *os.File
}

// lockDir takes a non-blocking exclusive lock on dir/LOCK, failing with
// ErrLocked when another live holder exists.  The lock itself is
// platform-specific (flock on unix; see lock_unix.go / lock_other.go).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, LockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filedev: opening lock file: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		if errors.Is(err, errWouldBlock) {
			return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, fmt.Errorf("filedev: locking %s: %w", dir, err)
	}
	return f, nil
}

// syncDir fsyncs a directory so the entries of freshly created files
// survive a host crash (the create-then-fsync-parent rule).
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("filedev: opening %s for sync: %w", path, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("filedev: syncing directory %s: %w", path, err)
	}
	return nil
}

// OpenSet opens (creating if necessary) the device files of a database
// directory.  The directory itself is created when missing.
func OpenSet(dir string, cfg SetConfig) (*Set, error) {
	if dir == "" {
		return nil, fmt.Errorf("filedev: empty directory path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("filedev: creating %s: %w", dir, err)
	}
	if cfg.DataBlocks <= 0 {
		cfg.DataBlocks = DefaultDataBlocks
	}
	if cfg.LogBlocks <= 0 {
		cfg.LogBlocks = DefaultLogBlocks
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	flashWorkers := workers
	if flashWorkers > 2 {
		flashWorkers = 2
	}

	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}

	// A directory counts as an existing database when either the data
	// file or the log file holds bytes.  The data file alone is not
	// enough: a database killed before its first checkpoint has written
	// nothing but the WAL control block and the flash cache, yet must
	// still be recovered on reopen.  The probe runs under the lock: a
	// stale answer from before another opener initialised the directory
	// would skip recovery of its committed transactions.
	dataPath := filepath.Join(dir, DataFile)
	logPath := filepath.Join(dir, LogFile)
	flashPath := filepath.Join(dir, FlashFile)
	existed := false
	for _, p := range []string{dataPath, logPath} {
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			existed = true
			break
		}
	}
	// Track which device files this open will create: their directory
	// entries need an explicit fsync (a reopen can still create files —
	// e.g. flash.cache when a flash policy is first enabled).
	creating := false
	paths := []string{dataPath, logPath}
	if cfg.FlashBlocks > 0 {
		paths = append(paths, flashPath)
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			creating = true
			break
		}
	}

	s := &Set{Dir: dir, Existed: existed, lock: lock}
	s.Data, err = Open("data", dataPath, cfg.DataBlocks, Options{Workers: workers, NoFsync: cfg.NoFsync})
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Log, err = Open("log", logPath, cfg.LogBlocks, Options{Workers: 1, NoFsync: cfg.NoFsync})
	if err != nil {
		s.Close()
		return nil, err
	}
	if cfg.FlashBlocks > 0 {
		s.Flash, err = Open("flash", flashPath, cfg.FlashBlocks, Options{Workers: flashWorkers, NoFsync: cfg.NoFsync})
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	// Device files were just created: make their directory entries
	// durable too (fsyncing a file does not fsync the entry naming it),
	// or a host crash could forget the files despite fsynced contents.
	if creating && !cfg.NoFsync {
		// On platforms without directory fsync (see dirSyncStrict) this is
		// best effort, like the parent sync below.
		if err := syncDir(dir); err != nil && dirSyncStrict {
			s.Close()
			return nil, err
		}
		if parent := filepath.Dir(dir); parent != dir {
			// Best effort for the directory's own entry: the parent may
			// predate us (and on some filesystems refuse dir fsync).
			syncDir(parent)
		}
	}
	return s, nil
}

// Close closes every open device of the set and releases the directory
// lock, returning the first error.
func (s *Set) Close() error {
	var first error
	for _, d := range []*Device{s.Data, s.Log, s.Flash} {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.lock != nil {
		// Closing the descriptor drops the flock.
		if err := s.lock.Close(); err != nil && first == nil {
			first = err
		}
		s.lock = nil
	}
	return first
}
