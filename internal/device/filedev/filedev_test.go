package filedev

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/device"
)

func openTestDev(t *testing.T, blocks int64, opts Options) *Device {
	t.Helper()
	d, err := Open("test", filepath.Join(t.TempDir(), "dev.img"), blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func blockOf(b byte) []byte {
	p := make([]byte, device.BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestFileDevReadWriteRoundTrip(t *testing.T) {
	d := openTestDev(t, 64, Options{})
	if err := d.WriteAt(3, blockOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, device.BlockSize)
	if err := d.ReadAt(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blockOf(0xAB)) {
		t.Fatal("read back different content")
	}
	// A block never written reads as zeros, even past the current file end.
	if err := d.ReadAt(63, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, device.BlockSize)) {
		t.Fatal("unwritten block not zero-filled")
	}
}

func TestFileDevBounds(t *testing.T) {
	d := openTestDev(t, 8, Options{})
	buf := make([]byte, device.BlockSize)
	if err := d.ReadAt(8, buf); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("read past capacity: %v, want ErrOutOfRange", err)
	}
	if err := d.WriteAt(-1, buf); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("negative write: %v, want ErrOutOfRange", err)
	}
	if err := d.ReadAt(0, buf[:10]); !errors.Is(err, device.ErrShortBuffer) {
		t.Fatalf("short buffer: %v, want ErrShortBuffer", err)
	}
	if err := d.WriteRun(6, [][]byte{blockOf(1), blockOf(2), blockOf(3)}); !errors.Is(err, device.ErrOutOfRange) {
		t.Fatalf("run past capacity: %v, want ErrOutOfRange", err)
	}
}

func TestFileDevRuns(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := openTestDev(t, 256, Options{Workers: workers})
			if got := d.Parallelism(); got != workers {
				t.Fatalf("Parallelism = %d, want %d", got, workers)
			}
			const n = 100
			pages := make([][]byte, n)
			for i := range pages {
				pages[i] = blockOf(byte(i + 1))
			}
			if err := d.WriteRun(10, pages); err != nil {
				t.Fatal(err)
			}
			seen := 0
			err := d.ReadRun(10, n, func(i int, p []byte) error {
				if i != seen {
					return fmt.Errorf("out-of-order callback: %d after %d", i, seen-1)
				}
				seen++
				if !bytes.Equal(p, blockOf(byte(i+1))) {
					return fmt.Errorf("block %d content mismatch", i)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != n {
				t.Fatalf("saw %d blocks, want %d", seen, n)
			}
			s := d.Stats()
			if s.SeqWrites != n || s.SeqReads != n {
				t.Fatalf("runs charged as seq %d/%d, want %d/%d", s.SeqReads, s.SeqWrites, n, n)
			}
		})
	}
}

func TestFileDevSequentialDetection(t *testing.T) {
	d := openTestDev(t, 64, Options{})
	buf := blockOf(1)
	// Blocks 5, 6 — the second write is sequential; block 20 is random.
	for _, blk := range []int64{5, 6, 20} {
		if err := d.WriteAt(blk, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.RandWrites != 2 || s.SeqWrites != 1 {
		t.Fatalf("writes classified rand=%d seq=%d, want 2/1", s.RandWrites, s.SeqWrites)
	}
	if s.Busy <= 0 {
		t.Fatal("no wall-clock busy time accumulated")
	}
}

func TestFileDevPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := Open("p", path, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(7, blockOf(0x5A)); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	buf := make([]byte, device.BlockSize)
	if err := d.ReadAt(7, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}

	d2, err := Open("p", path, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.ReadAt(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blockOf(0x5A)) {
		t.Fatal("content did not survive reopen")
	}
}

func TestFileDevSyncCounting(t *testing.T) {
	d := openTestDev(t, 8, Options{})
	if _, ok := interface{}(d).(device.Syncer); !ok {
		t.Fatal("filedev.Device does not implement device.Syncer")
	}
	if err := device.Sync(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := d.Syncs(); got != 2 {
		t.Fatalf("Syncs = %d, want 2", got)
	}
	// NoFsync still counts the barrier requests.
	nd := openTestDev(t, 8, Options{NoFsync: true})
	if nd.Fsync() {
		t.Fatal("NoFsync device reports fsync enabled")
	}
	if err := nd.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := nd.Syncs(); got != 1 {
		t.Fatalf("NoFsync Syncs = %d, want 1", got)
	}
}

func TestFileDevConcurrentAccess(t *testing.T) {
	d := openTestDev(t, 512, Options{Workers: 4})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * 64)
			for i := 0; i < 20; i++ {
				blk := base + int64(i%16)
				want := blockOf(byte(g + 1))
				if err := d.WriteAt(blk, want); err != nil {
					errs <- err
					return
				}
				got := make([]byte, device.BlockSize)
				if err := d.ReadAt(blk, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("goroutine %d: torn block %d", g, blk)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFileDevLoadLogical(t *testing.T) {
	d := openTestDev(t, 64, Options{Workers: 2})
	blocks := make([][]byte, 20)
	blocks[0] = blockOf(1)
	blocks[1] = blockOf(2)
	blocks[10] = blockOf(3)
	if err := d.LoadLogical(blocks); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.Ops() != 0 {
		t.Fatalf("LoadLogical left %d ops in the stats", s.Ops())
	}
	buf := make([]byte, device.BlockSize)
	for blk, want := range map[int64][]byte{0: blockOf(1), 1: blockOf(2), 10: blockOf(3), 5: make([]byte, device.BlockSize)} {
		if err := d.ReadAt(blk, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d mismatch after LoadLogical", blk)
		}
	}
}

func TestOpenSetExistedDetection(t *testing.T) {
	dir := t.TempDir()
	cfg := SetConfig{DataBlocks: 64, LogBlocks: 64, FlashBlocks: 64}
	set, err := OpenSet(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Existed {
		t.Fatal("fresh directory reported Existed")
	}
	if set.Flash == nil {
		t.Fatal("FlashBlocks > 0 but no flash device")
	}
	if err := set.Data.WriteAt(0, blockOf(9)); err != nil {
		t.Fatal(err)
	}
	if err := set.Data.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	set2, err := OpenSet(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if !set2.Existed {
		t.Fatal("reopen did not report Existed")
	}
	buf := make([]byte, device.BlockSize)
	if err := set2.Data.ReadAt(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blockOf(9)) {
		t.Fatal("data file content lost across OpenSet")
	}

	// No flash requested: the set opens without one.
	set3, err := OpenSet(t.TempDir(), SetConfig{DataBlocks: 8, LogBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer set3.Close()
	if set3.Flash != nil {
		t.Fatal("flash device opened without FlashBlocks")
	}
}

func TestOpenSetDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	cfg := SetConfig{DataBlocks: 8, LogBlocks: 8}
	set, err := OpenSet(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A second opener of a live directory must fail, not corrupt it.
	if _, err := OpenSet(dir, cfg); !errors.Is(err, ErrLocked) {
		t.Fatalf("concurrent OpenSet: %v, want ErrLocked", err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing releases the lock; the directory can be reopened.
	set2, err := OpenSet(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	set2.Close()
}
