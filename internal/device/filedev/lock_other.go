//go:build !unix

package filedev

import (
	"errors"
	"os"
)

// errWouldBlock is the sentinel lockDir matches to report ErrLocked.
var errWouldBlock = errors.New("filedev: lock held")

// flockExclusive is a no-op on platforms without flock: the LOCK file is
// still created, but concurrent openers of the same directory are not
// detected.  Single-opener discipline is the caller's responsibility
// there; the durability machinery is unaffected.
func flockExclusive(*os.File) error { return nil }

// dirSyncStrict: fsync on a directory handle is unsupported on these
// platforms (e.g. Windows' FlushFileBuffers needs a writable file), so
// directory-entry durability is best effort and a failure is ignored.
const dirSyncStrict = false
