// Package device implements simulated block storage devices.
//
// Every experiment in the FaCE paper hinges on the cost asymmetries between
// storage devices: random vs sequential access, flash vs magnetic disk,
// MLC vs SLC flash.  This package models those asymmetries with calibrated
// latency profiles derived from Table 1 of the paper (4 KiB random
// throughput in IOPS and sequential bandwidth in MB/s, measured with the
// Orion calibration tool on the authors' hardware).
//
// A Device stores real block contents in memory (so the database engine,
// flash cache and recovery manager operate on genuine data) and charges
// every operation a simulated service time to its statistics.  Elapsed
// simulated time, device utilization and I/O throughput are then derived
// from those statistics by the metrics and bench packages.
package device

import (
	"fmt"
	"time"
)

// BlockSize is the size of one device block in bytes.  It matches the
// paper's PostgreSQL page size of 4 KiB.
const BlockSize = 4096

// Profile describes the performance and cost characteristics of a storage
// device.  The throughput figures follow Table 1 of the paper.
type Profile struct {
	// Name identifies the device model, e.g. "Samsung 470 256GB (MLC)".
	Name string
	// Media is a coarse classification used in reports.
	Media MediaKind

	// RandReadIOPS and RandWriteIOPS are 4 KiB random operation rates.
	RandReadIOPS  float64
	RandWriteIOPS float64
	// SeqReadMBps and SeqWriteMBps are sequential bandwidths in MB/s.
	SeqReadMBps  float64
	SeqWriteMBps float64

	// SteadyRandWriteFactor models the degradation of sustained random
	// writes on flash in the steady state: garbage collection and write
	// amplification push the effective cost of a random write well above
	// the nominal 1/IOPS figure measured on a lightly used drive.  The
	// factor multiplies the random-write service time (1.0 = no
	// degradation).  It is calibrated so the per-operation service times
	// observed for the LRU-managed cache match Table 4 of the paper.
	// Sequential writes are unaffected, which is precisely the asymmetry
	// the FaCE design exploits.
	SteadyRandWriteFactor float64

	// CmdOverhead is the fixed per-command cost charged in addition to
	// the per-block transfer time for sequential single-block operations
	// and for multi-block runs.  It models command issue/FTL overhead and
	// is what makes batched (group) I/O cheaper than the same number of
	// individual sequential operations — the effect Group Replacement and
	// Group Second Chance exploit (Section 3.3).  Random single-block
	// operations are charged 1/IOPS, which already includes this
	// overhead.
	CmdOverhead time.Duration

	// CapacityGB and PriceUSD reproduce the capacity/price columns of
	// Table 1; they are only used for reporting and cost-effectiveness
	// analysis (Section 2.2, Table 5).
	CapacityGB float64
	PriceUSD   float64
}

// MediaKind classifies a device profile.
type MediaKind int

// Media kinds.
const (
	MediaUnknown MediaKind = iota
	MediaFlashMLC
	MediaFlashSLC
	MediaDisk
	MediaDRAM
)

// String returns a human-readable media name.
func (m MediaKind) String() string {
	switch m {
	case MediaFlashMLC:
		return "MLC flash SSD"
	case MediaFlashSLC:
		return "SLC flash SSD"
	case MediaDisk:
		return "magnetic disk"
	case MediaDRAM:
		return "DRAM"
	default:
		return "unknown"
	}
}

// IsFlash reports whether the media is NAND flash.
func (m MediaKind) IsFlash() bool { return m == MediaFlashMLC || m == MediaFlashSLC }

// PricePerGB returns the price per gigabyte in USD, or 0 when unknown.
func (p Profile) PricePerGB() float64 {
	if p.CapacityGB <= 0 {
		return 0
	}
	return p.PriceUSD / p.CapacityGB
}

// RandReadTime returns the service time of one random 4 KiB read.
func (p Profile) RandReadTime() time.Duration { return iopsToLatency(p.RandReadIOPS) }

// RandWriteTime returns the nominal service time of one random 4 KiB write
// (as measured on a lightly used device, Table 1).
func (p Profile) RandWriteTime() time.Duration { return iopsToLatency(p.RandWriteIOPS) }

// SteadyRandWriteTime returns the effective service time of a random write
// in the steady state, including the garbage-collection degradation factor.
func (p Profile) SteadyRandWriteTime() time.Duration {
	f := p.SteadyRandWriteFactor
	if f < 1 {
		f = 1
	}
	return time.Duration(float64(p.RandWriteTime()) * f)
}

// SeqReadTime returns the service time of one sequential 4 KiB read.
func (p Profile) SeqReadTime() time.Duration { return bandwidthToLatency(p.SeqReadMBps) }

// SeqWriteTime returns the service time of one sequential 4 KiB write.
func (p Profile) SeqWriteTime() time.Duration { return bandwidthToLatency(p.SeqWriteMBps) }

// ServiceTime returns the service time for a single block operation of the
// given kind and access pattern.
func (p Profile) ServiceTime(write, sequential bool) time.Duration {
	switch {
	case write && sequential:
		return p.SeqWriteTime()
	case write && !sequential:
		return p.SteadyRandWriteTime()
	case !write && sequential:
		return p.SeqReadTime()
	default:
		return p.RandReadTime()
	}
}

// String summarises the profile.
func (p Profile) String() string {
	return fmt.Sprintf("%s (%s): rr=%v rw=%v sr=%v sw=%v",
		p.Name, p.Media, p.RandReadTime(), p.RandWriteTime(), p.SeqReadTime(), p.SeqWriteTime())
}

func iopsToLatency(iops float64) time.Duration {
	if iops <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / iops)
}

func bandwidthToLatency(mbps float64) time.Duration {
	if mbps <= 0 {
		return 0
	}
	opsPerSec := mbps * 1e6 / BlockSize
	return time.Duration(float64(time.Second) / opsPerSec)
}

// Profiles reproduced from Table 1 of the paper.
var (
	// ProfileSamsung470 is the MLC SSD used as the primary flash cache
	// device (Samsung 470 Series 256 GB).
	ProfileSamsung470 = Profile{
		Name:                  "Samsung 470 Series 256GB",
		Media:                 MediaFlashMLC,
		RandReadIOPS:          28495,
		RandWriteIOPS:         6314,
		SeqReadMBps:           251.33,
		SeqWriteMBps:          242.80,
		SteadyRandWriteFactor: 2.8,
		CmdOverhead:           18 * time.Microsecond,
		CapacityGB:            256,
		PriceUSD:              450,
	}

	// ProfileIntelX25M is the second MLC SSD of Table 1 (Intel X25-M G2).
	ProfileIntelX25M = Profile{
		Name:                  "Intel X25-M G2 80GB",
		Media:                 MediaFlashMLC,
		RandReadIOPS:          35601,
		RandWriteIOPS:         2547,
		SeqReadMBps:           258.70,
		SeqWriteMBps:          80.81,
		SteadyRandWriteFactor: 2.2,
		CmdOverhead:           15 * time.Microsecond,
		CapacityGB:            80,
		PriceUSD:              180,
	}

	// ProfileIntelX25E is the SLC SSD (Intel X25-E 32 GB).
	ProfileIntelX25E = Profile{
		Name:                  "Intel X25-E 32GB",
		Media:                 MediaFlashSLC,
		RandReadIOPS:          38427,
		RandWriteIOPS:         5057,
		SeqReadMBps:           259.2,
		SeqWriteMBps:          195.25,
		SteadyRandWriteFactor: 1.6,
		CmdOverhead:           12 * time.Microsecond,
		CapacityGB:            32,
		PriceUSD:              440,
	}

	// ProfileCheetah15K is one enterprise 15k-RPM SAS disk drive
	// (Seagate Cheetah 15K.6 146.8 GB).
	ProfileCheetah15K = Profile{
		Name:          "Seagate Cheetah 15K.6 146.8GB",
		Media:         MediaDisk,
		RandReadIOPS:  409,
		RandWriteIOPS: 343,
		SeqReadMBps:   156,
		SeqWriteMBps:  154,
		CapacityGB:    146.8,
		PriceUSD:      240,
	}

	// ProfileRAID0x8 is the 8-disk RAID-0 array of Table 1, reported for
	// reference.  The simulator builds disk arrays by striping individual
	// ProfileCheetah15K devices instead of using this aggregate profile.
	ProfileRAID0x8 = Profile{
		Name:          "8-disk RAID-0 (Cheetah 15K.6)",
		Media:         MediaDisk,
		RandReadIOPS:  2598,
		RandWriteIOPS: 2502,
		SeqReadMBps:   848,
		SeqWriteMBps:  843,
		CapacityGB:    1170,
		PriceUSD:      1920,
	}

	// ProfileDRAM approximates main memory for the cost-effectiveness
	// analysis of Section 2.2 / Table 5.  Access latencies are effectively
	// zero at page granularity compared to storage devices.
	ProfileDRAM = Profile{
		Name:          "DDR3 DRAM",
		Media:         MediaDRAM,
		RandReadIOPS:  20e6,
		RandWriteIOPS: 20e6,
		SeqReadMBps:   12800,
		SeqWriteMBps:  12800,
		CapacityGB:    4,
		PriceUSD:      72, // ~10x the $/GB of MLC flash, per Section 5.4.1
	}
)

// Table1Profiles returns the device profiles in the order they appear in
// Table 1 of the paper.
func Table1Profiles() []Profile {
	return []Profile{
		ProfileSamsung470,
		ProfileIntelX25M,
		ProfileIntelX25E,
		ProfileCheetah15K,
		ProfileRAID0x8,
	}
}
