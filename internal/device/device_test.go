package device

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func fill(b byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestProfileServiceTimes(t *testing.T) {
	p := ProfileSamsung470
	if got := p.RandReadTime(); got <= 0 {
		t.Fatalf("RandReadTime = %v, want > 0", got)
	}
	// Random writes must be slower than sequential writes by roughly an
	// order of magnitude for the MLC SSD (the asymmetry FaCE exploits).
	ratio := float64(p.RandWriteTime()) / float64(p.SeqWriteTime())
	if ratio < 5 {
		t.Fatalf("MLC random/sequential write ratio = %.1f, want >= 5", ratio)
	}
	// Disk random access must be much slower than flash random access.
	if ProfileCheetah15K.RandReadTime() < 10*p.RandReadTime() {
		t.Fatalf("disk random read (%v) should dwarf flash random read (%v)",
			ProfileCheetah15K.RandReadTime(), p.RandReadTime())
	}
}

func TestProfileServiceTimeDispatch(t *testing.T) {
	p := ProfileSamsung470
	cases := []struct {
		write, seq bool
		want       time.Duration
	}{
		{false, false, p.RandReadTime()},
		{false, true, p.SeqReadTime()},
		{true, false, p.SteadyRandWriteTime()},
		{true, true, p.SeqWriteTime()},
	}
	for _, c := range cases {
		if got := p.ServiceTime(c.write, c.seq); got != c.want {
			t.Errorf("ServiceTime(write=%v, seq=%v) = %v, want %v", c.write, c.seq, got, c.want)
		}
	}
	// The steady-state (GC-degraded) random write must be at least the
	// nominal one, and strictly worse for the MLC SSD.
	if p.SteadyRandWriteTime() <= p.RandWriteTime() {
		t.Fatal("MLC steady-state random writes should be degraded by GC")
	}
	if ProfileCheetah15K.SteadyRandWriteTime() != ProfileCheetah15K.RandWriteTime() {
		t.Fatal("disks have no GC degradation")
	}
}

func TestProfilePricePerGB(t *testing.T) {
	if got := ProfileCheetah15K.PricePerGB(); got < 1.5 || got > 1.8 {
		t.Fatalf("Cheetah price/GB = %.2f, want ~1.63", got)
	}
	var zero Profile
	if got := zero.PricePerGB(); got != 0 {
		t.Fatalf("zero profile price/GB = %v, want 0", got)
	}
}

func TestTable1Profiles(t *testing.T) {
	ps := Table1Profiles()
	if len(ps) != 5 {
		t.Fatalf("Table1Profiles returned %d profiles, want 5", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.RandReadIOPS <= 0 {
			t.Errorf("incomplete profile: %+v", p)
		}
	}
}

func TestMediaKindString(t *testing.T) {
	kinds := []MediaKind{MediaUnknown, MediaFlashMLC, MediaFlashSLC, MediaDisk, MediaDRAM}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("MediaKind %d has empty or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !MediaFlashMLC.IsFlash() || !MediaFlashSLC.IsFlash() || MediaDisk.IsFlash() {
		t.Fatal("IsFlash misclassifies media kinds")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := New("test", ProfileSamsung470, 16)
	want := fill(0xAB)
	if err := d.WriteAt(3, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := d.ReadAt(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read data differs from written data")
	}
}

func TestReadUnwrittenBlockIsZero(t *testing.T) {
	d := New("test", ProfileSamsung470, 4)
	got := fill(0xFF)
	if err := d.ReadAt(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("unwritten block should read as zeros")
	}
}

func TestOutOfRangeAndShortBuffer(t *testing.T) {
	d := New("test", ProfileSamsung470, 4)
	buf := make([]byte, BlockSize)
	if err := d.ReadAt(4, buf); err == nil {
		t.Fatal("expected out-of-range read error")
	}
	if err := d.WriteAt(-1, buf); err == nil {
		t.Fatal("expected out-of-range write error")
	}
	if err := d.ReadAt(0, make([]byte, 10)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("got %v, want ErrShortBuffer", err)
	}
	if err := d.WriteAt(0, make([]byte, 10)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("got %v, want ErrShortBuffer", err)
	}
	if err := d.WriteRun(0, [][]byte{make([]byte, 1)}); err == nil {
		t.Fatal("expected short buffer error in WriteRun")
	}
	if err := d.WriteRun(3, [][]byte{fill(1), fill(2)}); err == nil {
		t.Fatal("expected out-of-range error in WriteRun")
	}
	if err := d.ReadRun(3, 2, func(int, []byte) error { return nil }); err == nil {
		t.Fatal("expected out-of-range error in ReadRun")
	}
}

func TestSequentialDetection(t *testing.T) {
	d := New("test", ProfileSamsung470, 100)
	buf := fill(1)
	// Ascending writes after the first should be sequential.
	for i := int64(0); i < 10; i++ {
		if err := d.WriteAt(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.SeqWrites != 9 || s.RandWrites != 1 {
		t.Fatalf("ascending writes: seq=%d rand=%d, want 9/1", s.SeqWrites, s.RandWrites)
	}
	d.ResetStats()
	// Scattered writes are random.
	for _, blk := range []int64{5, 50, 17, 80, 2} {
		if err := d.WriteAt(blk, buf); err != nil {
			t.Fatal(err)
		}
	}
	s = d.Stats()
	if s.RandWrites != 5 {
		t.Fatalf("scattered writes: rand=%d, want 5", s.RandWrites)
	}
	// Interleaved reads do not break write sequentiality (per-kind
	// tracking): only the first write of the ascending run is random.
	d.ResetStats()
	rbuf := make([]byte, BlockSize)
	for i := int64(0); i < 5; i++ {
		if err := d.WriteAt(20+i, buf); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadAt(90-i, rbuf); err != nil {
			t.Fatal(err)
		}
	}
	s = d.Stats()
	if s.SeqWrites != 4 || s.RandWrites != 1 {
		t.Fatalf("interleaved: seq=%d rand=%d writes, want 4/1 (stats %v)", s.SeqWrites, s.RandWrites, s)
	}
}

func TestRunOperations(t *testing.T) {
	d := New("test", ProfileSamsung470, 64)
	pages := [][]byte{fill(1), fill(2), fill(3), fill(4)}
	if err := d.WriteRun(10, pages); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.SeqWrites != 4 || s.RandWrites != 0 {
		t.Fatalf("WriteRun stats %v, want 4 sequential writes", s)
	}
	var got []byte
	err := d.ReadRun(10, 4, func(i int, p []byte) error {
		got = append(got, p[0])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("ReadRun contents = %v, want [1 2 3 4]", got)
	}
	s = d.Stats()
	if s.SeqReads != 4 {
		t.Fatalf("ReadRun stats %v, want 4 sequential reads", s)
	}
	// Empty runs are no-ops.
	if err := d.WriteRun(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadRun(0, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	d := New("test", ProfileCheetah15K, 100)
	buf := fill(9)
	if err := d.WriteAt(50, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(10, buf); err != nil {
		t.Fatal(err)
	}
	want := 2 * ProfileCheetah15K.RandWriteTime()
	if got := d.BusyTime(); got != want {
		t.Fatalf("BusyTime = %v, want %v", got, want)
	}
	d.ResetStats()
	if got := d.BusyTime(); got != 0 {
		t.Fatalf("BusyTime after reset = %v, want 0", got)
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{RandReads: 5, RandWrites: 3, SeqReads: 2, SeqWrites: 1, Busy: 10 * time.Millisecond}
	b := Stats{RandReads: 1, RandWrites: 1, SeqReads: 1, SeqWrites: 1, Busy: 2 * time.Millisecond}
	sum := a.Add(b)
	if sum.Reads() != 9 || sum.Writes() != 6 || sum.Ops() != 15 {
		t.Fatalf("Add: %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Fatalf("Sub: got %+v, want %+v", diff, a)
	}
	if a.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New("test", ProfileSamsung470, 8)
	if err := d.WriteAt(1, fill(7)); err != nil {
		t.Fatal(err)
	}
	snap := d.SnapshotContent()
	if err := d.WriteAt(1, fill(8)); err != nil {
		t.Fatal(err)
	}
	d.RestoreContent(snap)
	got := make([]byte, BlockSize)
	if err := d.ReadAt(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("restored block byte = %d, want 7", got[0])
	}
	if d.Stats().Ops() != 1 {
		t.Fatalf("RestoreContent should reset stats, got %v", d.Stats())
	}
	// Mutating the snapshot must not affect the device (deep copy).
	snap[1][0] = 99
	if err := d.ReadAt(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("snapshot mutation leaked into device content")
	}
}

func TestDeviceRoundTripProperty(t *testing.T) {
	d := New("prop", ProfileIntelX25E, 256)
	f := func(blk uint8, val uint8) bool {
		p := fill(val)
		if err := d.WriteAt(int64(blk), p); err != nil {
			return false
		}
		got := make([]byte, BlockSize)
		if err := d.ReadAt(int64(blk), got); err != nil {
			return false
		}
		return bytes.Equal(got, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayStriping(t *testing.T) {
	a := NewArray("raid", ProfileCheetah15K, 4, 100)
	if a.Parallelism() != 4 {
		t.Fatalf("Parallelism = %d, want 4", a.Parallelism())
	}
	if a.NumBlocks() < 100 {
		t.Fatalf("NumBlocks = %d, want >= 100", a.NumBlocks())
	}
	// Write every block with its index and read back.
	buf := make([]byte, BlockSize)
	for i := int64(0); i < 100; i++ {
		buf[0] = byte(i)
		if err := a.WriteAt(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		if err := a.ReadAt(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("block %d content = %d", i, buf[0])
		}
	}
	// Work should spread across all members.
	for i, m := range a.Members() {
		if m.Stats().Ops() == 0 {
			t.Errorf("member %d received no I/O", i)
		}
	}
	if a.Stats().Ops() != 200 {
		t.Fatalf("aggregate ops = %d, want 200", a.Stats().Ops())
	}
}

func TestArrayRunsAndBounds(t *testing.T) {
	a := NewArray("raid", ProfileCheetah15K, 3, 30)
	pages := make([][]byte, 9)
	for i := range pages {
		pages[i] = fill(byte(i + 1))
	}
	if err := a.WriteRun(6, pages); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := a.ReadRun(6, 9, func(i int, p []byte) error {
		got = append(got, p[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != byte(i+1) {
			t.Fatalf("run block %d = %d, want %d", i, b, i+1)
		}
	}
	s := a.Stats()
	if s.SeqWrites != 9 || s.SeqReads != 9 {
		t.Fatalf("array run stats %v, want 9 seq reads and writes", s)
	}
	buf := make([]byte, BlockSize)
	if err := a.ReadAt(a.NumBlocks(), buf); err == nil {
		t.Fatal("expected out-of-range array read error")
	}
	if err := a.WriteAt(-1, buf); err == nil {
		t.Fatal("expected out-of-range array write error")
	}
	if err := a.WriteRun(a.NumBlocks()-1, pages); err == nil {
		t.Fatal("expected out-of-range array WriteRun error")
	}
	if err := a.ReadRun(a.NumBlocks()-1, 9, nil); err == nil {
		t.Fatal("expected out-of-range array ReadRun error")
	}
	if err := a.WriteRun(0, [][]byte{make([]byte, 3)}); err == nil {
		t.Fatal("expected short-buffer array WriteRun error")
	}
}

func TestArraySnapshotRestore(t *testing.T) {
	a := NewArray("raid", ProfileCheetah15K, 2, 10)
	if err := a.WriteAt(5, fill(42)); err != nil {
		t.Fatal(err)
	}
	snap := a.SnapshotContent()
	if err := a.WriteAt(5, fill(43)); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreContent(snap); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if err := a.ReadAt(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 42 {
		t.Fatalf("restored array block = %d, want 42", buf[0])
	}
	if err := a.RestoreContent(snap[:1]); err == nil {
		t.Fatal("expected member-count mismatch error")
	}
}

func TestArrayBusyAndMaxMemberBusy(t *testing.T) {
	a := NewArray("raid", ProfileCheetah15K, 2, 10)
	buf := fill(1)
	// Hit only member 0 (even logical blocks).
	for i := 0; i < 4; i++ {
		if err := a.WriteAt(int64(i*2), buf); err != nil {
			t.Fatal(err)
		}
	}
	if a.MaxMemberBusy() != a.BusyTime() {
		t.Fatalf("imbalanced load: MaxMemberBusy %v should equal total busy %v",
			a.MaxMemberBusy(), a.BusyTime())
	}
	a.ResetStats()
	if a.BusyTime() != 0 {
		t.Fatal("ResetStats did not clear member stats")
	}
}

func TestNewWithNegativeCapacity(t *testing.T) {
	d := New("neg", ProfileSamsung470, -5)
	if d.NumBlocks() != 0 {
		t.Fatalf("NumBlocks = %d, want 0", d.NumBlocks())
	}
}

func TestRunAmortizesCommandOverhead(t *testing.T) {
	// A 64-block run must be cheaper than 64 individual sequential writes
	// because the per-command overhead is paid once (the effect the FaCE
	// group optimizations exploit).
	single := New("singles", ProfileSamsung470, 128)
	batch := New("batch", ProfileSamsung470, 128)
	pages := make([][]byte, 64)
	buf := fill(1)
	for i := range pages {
		pages[i] = buf
	}
	for i := int64(0); i < 64; i++ {
		if err := single.WriteAt(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.WriteRun(0, pages); err != nil {
		t.Fatal(err)
	}
	if batch.BusyTime() >= single.BusyTime() {
		t.Fatalf("batch busy %v should be less than singles busy %v", batch.BusyTime(), single.BusyTime())
	}
}

func TestLoadLogical(t *testing.T) {
	blocks := make([][]byte, 10)
	for i := range blocks {
		if i%2 == 0 {
			blocks[i] = fill(byte(i + 1))
		}
	}
	d := New("plain", ProfileSamsung470, 4)
	d.LoadLogical(blocks)
	if d.NumBlocks() != 10 {
		t.Fatalf("NumBlocks = %d, want 10", d.NumBlocks())
	}
	buf := make([]byte, BlockSize)
	if err := d.ReadAt(4, buf); err != nil || buf[0] != 5 {
		t.Fatalf("block 4 = %d, %v", buf[0], err)
	}
	if d.Stats().Ops() != 1 {
		t.Fatal("LoadLogical should not charge I/O")
	}

	a := NewArray("arr", ProfileCheetah15K, 3, 6)
	a.LoadLogical(blocks)
	if a.NumBlocks() < 10 {
		t.Fatalf("array NumBlocks = %d, want >= 10", a.NumBlocks())
	}
	for i := 0; i < 10; i++ {
		if err := a.ReadAt(int64(i), buf); err != nil {
			t.Fatal(err)
		}
		want := byte(0)
		if i%2 == 0 {
			want = byte(i + 1)
		}
		if buf[0] != want {
			t.Fatalf("array block %d = %d, want %d", i, buf[0], want)
		}
	}
}
