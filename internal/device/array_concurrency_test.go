package device

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestArrayConcurrentMemberIO drives independent requests at every stripe
// member from parallel goroutines: per-member locking must keep the data
// correct (checked per block) and the statistics consistent (checked
// against the aggregate), with no array-level serialization for -race to
// object to.
func TestArrayConcurrentMemberIO(t *testing.T) {
	const (
		members  = 4
		perG     = 64
		routines = 8
	)
	a := NewArray("data", ProfileCheetah15K, members, members*perG*routines)

	var wg sync.WaitGroup
	errs := make(chan error, routines)
	for g := 0; g < routines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, BlockSize)
			out := make([]byte, BlockSize)
			// Each goroutine owns a disjoint set of blocks spread across
			// all members.
			for i := 0; i < perG*members; i++ {
				blk := int64(g*perG*members + i)
				binary.LittleEndian.PutUint64(buf, uint64(blk)^0xFACE)
				if err := a.WriteAt(blk, buf); err != nil {
					errs <- err
					return
				}
				if err := a.ReadAt(blk, out); err != nil {
					errs <- err
					return
				}
				if got := binary.LittleEndian.Uint64(out); got != uint64(blk)^0xFACE {
					errs <- fmt.Errorf("block %d read back %#x", blk, got)
					return
				}
			}
		}(g)
	}
	// Concurrent stats readers exercise the lock-free aggregate path.
	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = a.Stats()
				_ = a.NumBlocks()
			}
		}
	}()
	wg.Wait()
	close(stop)
	statsWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	s := a.Stats()
	wantOps := int64(routines * perG * members * 2)
	if s.Ops() != wantOps {
		t.Fatalf("aggregate ops = %d, want %d", s.Ops(), wantOps)
	}
	// Striping spreads the load evenly, so every member did work.
	for i, m := range a.Members() {
		if m.Stats().Ops() == 0 {
			t.Fatalf("member %d served no requests", i)
		}
	}
}

// TestArrayNumBlocksTracksContentLoads pins the cached-capacity behaviour:
// bulk content loads that change member capacities must refresh NumBlocks.
func TestArrayNumBlocksTracksContentLoads(t *testing.T) {
	a := NewArray("data", ProfileCheetah15K, 4, 100)
	if a.NumBlocks() != 100 {
		t.Fatalf("NumBlocks = %d, want 100", a.NumBlocks())
	}
	blocks := make([][]byte, 220)
	blocks[219] = make([]byte, BlockSize)
	a.LoadLogical(blocks)
	if a.NumBlocks() < 220 {
		t.Fatalf("NumBlocks = %d after LoadLogical of 220 blocks", a.NumBlocks())
	}
	buf := make([]byte, BlockSize)
	if err := a.ReadAt(219, buf); err != nil {
		t.Fatalf("read of grown block: %v", err)
	}
	snap := a.SnapshotContent()
	b := NewArray("data2", ProfileCheetah15K, 4, 10)
	if err := b.RestoreContent(snap); err != nil {
		t.Fatal(err)
	}
	if b.NumBlocks() != a.NumBlocks() {
		t.Fatalf("restored NumBlocks = %d, want %d", b.NumBlocks(), a.NumBlocks())
	}
}
