package device

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Array is a RAID-0 (striped) array of identical devices.  Block blk maps
// to member blk % n, local block blk / n, which is how the benchmark
// reproduces the paper's 4/8/16-disk configurations (Figure 5).
//
// The array exposes the same Dev interface as a single device.  Its
// Parallelism equals the member count: member devices serve independent
// requests concurrently, so the elapsed-time model divides the array's
// aggregate busy time across members (see the metrics package).
//
// Locking is strictly per member: the array itself holds no lock, and the
// hot paths consult a cached capacity instead of summing member capacities
// under their locks, so concurrent requests for different members never
// serialize on shared state — Parallelism() == n holds for concurrent
// callers, not just for the time model.
type Array struct {
	name    string
	members []*Device
	// total caches the array capacity; it only changes through the bulk
	// content-loading paths (RestoreContent, LoadLogical), which must not
	// run concurrently with I/O anyway.
	total atomic.Int64
}

// NewArray creates a striped array of n devices with the given profile and
// a total capacity of numBlocks blocks.
func NewArray(name string, profile Profile, n int, numBlocks int64) *Array {
	if n < 1 {
		n = 1
	}
	perMember := (numBlocks + int64(n) - 1) / int64(n)
	members := make([]*Device, n)
	for i := range members {
		members[i] = New(fmt.Sprintf("%s[%d]", name, i), profile, perMember)
	}
	a := &Array{name: name, members: members}
	a.total.Store(perMember * int64(n))
	return a
}

// Name returns the array name.
func (a *Array) Name() string { return a.name }

// Members returns the member devices (for per-member inspection in tests).
func (a *Array) Members() []*Device { return a.members }

// Parallelism returns the number of member devices.
func (a *Array) Parallelism() int { return len(a.members) }

// NumBlocks returns the total capacity in blocks.
func (a *Array) NumBlocks() int64 { return a.total.Load() }

func (a *Array) locate(blk int64) (member *Device, local int64) {
	n := int64(len(a.members))
	return a.members[blk%n], blk / n
}

// ReadAt reads block blk into p.
func (a *Array) ReadAt(blk int64, p []byte) error {
	if blk < 0 || blk >= a.NumBlocks() {
		return fmt.Errorf("%w: read block %d of %d (%s)", ErrOutOfRange, blk, a.NumBlocks(), a.name)
	}
	m, local := a.locate(blk)
	return m.ReadAt(local, p)
}

// WriteAt writes block blk from p.
func (a *Array) WriteAt(blk int64, p []byte) error {
	if blk < 0 || blk >= a.NumBlocks() {
		return fmt.Errorf("%w: write block %d of %d (%s)", ErrOutOfRange, blk, a.NumBlocks(), a.name)
	}
	m, local := a.locate(blk)
	return m.WriteAt(local, p)
}

// ReadRun reads n consecutive blocks starting at blk.  A run that spans
// stripe members is split into per-member runs; each member charges its
// portion at sequential rates, mirroring how RAID-0 turns large sequential
// I/O into parallel sequential streams.
func (a *Array) ReadRun(blk int64, n int, fn func(i int, p []byte) error) error {
	if n <= 0 {
		return nil
	}
	if blk < 0 || blk+int64(n) > a.NumBlocks() {
		return fmt.Errorf("%w: read run [%d,%d) of %d (%s)", ErrOutOfRange, blk, blk+int64(n), a.NumBlocks(), a.name)
	}
	// Charge each member its share of the run as sequential I/O, then
	// deliver blocks to the callback in logical order.
	buf := make([]byte, BlockSize)
	for i := 0; i < n; i++ {
		m, local := a.locate(blk + int64(i))
		if err := m.readRunPortion(local, buf); err != nil {
			return err
		}
		if err := fn(i, buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes len(pages) consecutive blocks starting at blk.
func (a *Array) WriteRun(blk int64, pages [][]byte) error {
	n := len(pages)
	if n == 0 {
		return nil
	}
	if blk < 0 || blk+int64(n) > a.NumBlocks() {
		return fmt.Errorf("%w: write run [%d,%d) of %d (%s)", ErrOutOfRange, blk, blk+int64(n), a.NumBlocks(), a.name)
	}
	for i, p := range pages {
		if len(p) < BlockSize {
			return fmt.Errorf("%w: run element %d", ErrShortBuffer, i)
		}
		m, local := a.locate(blk + int64(i))
		if err := m.writeRunPortion(local, p); err != nil {
			return err
		}
	}
	return nil
}

// readRunPortion reads a single block charged at the sequential rate.
func (d *Device) readRunPortion(blk int64, p []byte) error {
	d.mu.Lock()
	if blk < 0 || blk >= int64(len(d.blocks)) {
		d.mu.Unlock()
		return fmt.Errorf("%w: read block %d of %d (%s)", ErrOutOfRange, blk, len(d.blocks), d.name)
	}
	d.lastRead = blk
	d.charge(false, true, 1)
	src := d.blocks[blk]
	if src == nil {
		for i := 0; i < BlockSize; i++ {
			p[i] = 0
		}
		d.mu.Unlock()
		return nil
	}
	copy(p[:BlockSize], src)
	d.mu.Unlock()
	return nil
}

// writeRunPortion writes a single block charged at the sequential rate.
func (d *Device) writeRunPortion(blk int64, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if blk < 0 || blk >= int64(len(d.blocks)) {
		return fmt.Errorf("%w: write block %d of %d (%s)", ErrOutOfRange, blk, len(d.blocks), d.name)
	}
	d.lastWrite = blk
	d.charge(true, true, 1)
	d.storeLocked(blk, p)
	return nil
}

// Stats returns the aggregate statistics across all members.  Each member
// is snapshotted under its own lock; no array-level lock is taken.
func (a *Array) Stats() Stats {
	var total Stats
	for _, m := range a.members {
		total = total.Add(m.Stats())
	}
	return total
}

// ResetStats clears all member statistics.
func (a *Array) ResetStats() {
	for _, m := range a.members {
		m.ResetStats()
	}
}

// BusyTime returns the aggregate busy time across all members.  Divide by
// Parallelism() to estimate the wall-clock contribution of the array under
// a balanced load.
func (a *Array) BusyTime() time.Duration {
	return a.Stats().Busy
}

// MaxMemberBusy returns the largest member busy time, a tighter bound on
// the array's wall-clock contribution when load is imbalanced.
func (a *Array) MaxMemberBusy() time.Duration {
	var max time.Duration
	for _, m := range a.members {
		if b := m.BusyTime(); b > max {
			max = b
		}
	}
	return max
}

// SnapshotContent returns a deep copy of all member contents.
func (a *Array) SnapshotContent() [][][]byte {
	out := make([][][]byte, len(a.members))
	for i, m := range a.members {
		out[i] = m.SnapshotContent()
	}
	return out
}

// RestoreContent restores member contents from a snapshot taken with
// SnapshotContent.  The snapshot must have the same member count.
func (a *Array) RestoreContent(snapshot [][][]byte) error {
	if len(snapshot) != len(a.members) {
		return fmt.Errorf("device: snapshot has %d members, array has %d", len(snapshot), len(a.members))
	}
	for i, m := range a.members {
		m.RestoreContent(snapshot[i])
	}
	a.refreshTotal()
	return nil
}

// refreshTotal recomputes the cached capacity after a bulk content load.
func (a *Array) refreshTotal() {
	var total int64
	for _, m := range a.members {
		total += m.NumBlocks()
	}
	a.total.Store(total)
}

// LoadLogical replaces the array contents with the given logical block
// images (index = logical block number across the whole array) without
// charging any simulated I/O.  Blocks are distributed to members by the
// usual striping rule.  Member capacities grow if needed; statistics are
// reset.
func (a *Array) LoadLogical(blocks [][]byte) {
	n := int64(len(a.members))
	perMember := (int64(len(blocks)) + n - 1) / n
	member := make([][][]byte, len(a.members))
	for i := range member {
		cap := perMember
		if existing := a.members[i].NumBlocks(); existing > cap {
			cap = existing
		}
		member[i] = make([][]byte, cap)
	}
	for blk, content := range blocks {
		if content == nil {
			continue
		}
		m := int64(blk) % n
		local := int64(blk) / n
		cp := make([]byte, BlockSize)
		copy(cp, content)
		member[m][local] = cp
	}
	for i := range a.members {
		a.members[i].RestoreContent(member[i])
	}
	a.refreshTotal()
}
