package device

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common errors returned by devices.
var (
	// ErrOutOfRange indicates a block number outside the device capacity.
	ErrOutOfRange = errors.New("device: block out of range")
	// ErrShortBuffer indicates a caller buffer smaller than one block.
	ErrShortBuffer = errors.New("device: buffer smaller than block size")
)

// Dev is the interface shared by single devices and striped arrays.
//
// ReadAt/WriteAt operate on one block.  ReadRun/WriteRun operate on a
// contiguous ascending run of blocks and are charged at sequential rates,
// which is how the flash cache issues its group (batch) I/O.
type Dev interface {
	// ReadAt reads block blk into p (len(p) >= BlockSize).
	ReadAt(blk int64, p []byte) error
	// WriteAt writes block blk from p (len(p) >= BlockSize).
	WriteAt(blk int64, p []byte) error
	// ReadRun reads n consecutive blocks starting at blk, invoking fn for
	// each block with a buffer that is only valid during the call.
	ReadRun(blk int64, n int, fn func(i int, p []byte) error) error
	// WriteRun writes len(pages) consecutive blocks starting at blk.
	WriteRun(blk int64, pages [][]byte) error
	// NumBlocks is the device capacity in blocks.
	NumBlocks() int64
	// Stats returns a snapshot of the accumulated statistics.
	Stats() Stats
	// ResetStats clears the accumulated statistics (content is kept).
	ResetStats()
	// BusyTime returns the total accumulated service time.
	BusyTime() time.Duration
	// Parallelism is the number of operations the device can serve
	// concurrently (1 for a single device, #disks for a striped array).
	Parallelism() int
	// Name identifies the device for reports.
	Name() string
}

// Syncer is implemented by devices with an explicit durability barrier
// (file-backed devices expose fsync this way).  The simulated in-memory
// devices are always "durable" and do not implement it.
type Syncer interface {
	// Sync blocks until every completed write has reached stable storage.
	Sync() error
}

// Sync flushes dev to stable storage when it supports a durability
// barrier and is a no-op otherwise (including for a nil device).  The
// write-ahead log force, destage watermark and checkpoint paths call it so
// their ordering guarantees hold on real media without the simulated
// devices paying for a method they do not need.
func Sync(dev Dev) error {
	if s, ok := dev.(Syncer); ok && s != nil {
		return s.Sync()
	}
	return nil
}

// Stats accumulates operation counts and simulated busy time for a device.
type Stats struct {
	RandReads  int64
	RandWrites int64
	SeqReads   int64
	SeqWrites  int64
	// Busy is the total simulated service time of all operations.
	Busy time.Duration
}

// Reads returns the total number of block reads.
func (s Stats) Reads() int64 { return s.RandReads + s.SeqReads }

// Writes returns the total number of block writes.
func (s Stats) Writes() int64 { return s.RandWrites + s.SeqWrites }

// Ops returns the total number of block operations.
func (s Stats) Ops() int64 { return s.Reads() + s.Writes() }

// Sub returns the difference s - prior, field by field.  It is used to
// measure the I/O performed during a bounded phase (e.g. recovery).
func (s Stats) Sub(prior Stats) Stats {
	return Stats{
		RandReads:  s.RandReads - prior.RandReads,
		RandWrites: s.RandWrites - prior.RandWrites,
		SeqReads:   s.SeqReads - prior.SeqReads,
		SeqWrites:  s.SeqWrites - prior.SeqWrites,
		Busy:       s.Busy - prior.Busy,
	}
}

// Add returns the sum of s and other, field by field.
func (s Stats) Add(other Stats) Stats {
	return Stats{
		RandReads:  s.RandReads + other.RandReads,
		RandWrites: s.RandWrites + other.RandWrites,
		SeqReads:   s.SeqReads + other.SeqReads,
		SeqWrites:  s.SeqWrites + other.SeqWrites,
		Busy:       s.Busy + other.Busy,
	}
}

// String summarises the statistics.
func (s Stats) String() string {
	return fmt.Sprintf("rr=%d rw=%d sr=%d sw=%d busy=%v",
		s.RandReads, s.RandWrites, s.SeqReads, s.SeqWrites, s.Busy)
}

// Device is a single simulated block device.  Contents are held in memory
// (blocks are allocated lazily) so the data written by the engine, the
// flash cache and the write-ahead log are real and survive a simulated
// crash of the volatile layers.
//
// Sequentiality is detected automatically: an operation is sequential when
// its block number immediately follows the previous operation of the same
// kind (read or write).  Run operations (ReadRun/WriteRun) are always
// charged at sequential rates, modelling large batched I/O that modern
// SSDs execute with full internal parallelism.
type Device struct {
	mu      sync.Mutex
	name    string
	profile Profile
	blocks  [][]byte
	stats   Stats

	lastRead  int64
	lastWrite int64
}

// New creates a device with the given profile and capacity in blocks.
func New(name string, profile Profile, numBlocks int64) *Device {
	if numBlocks < 0 {
		numBlocks = 0
	}
	return &Device{
		name:      name,
		profile:   profile,
		blocks:    make([][]byte, numBlocks),
		lastRead:  -2,
		lastWrite: -2,
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Profile returns the device's latency profile.
func (d *Device) Profile() Profile { return d.profile }

// NumBlocks returns the device capacity in blocks.
func (d *Device) NumBlocks() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.blocks))
}

// Parallelism of a single device is 1.
func (d *Device) Parallelism() int { return 1 }

// ReadAt reads block blk into p.
func (d *Device) ReadAt(blk int64, p []byte) error {
	if len(p) < BlockSize {
		return ErrShortBuffer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if blk < 0 || blk >= int64(len(d.blocks)) {
		return fmt.Errorf("%w: read block %d of %d (%s)", ErrOutOfRange, blk, len(d.blocks), d.name)
	}
	seq := blk == d.lastRead+1
	d.lastRead = blk
	d.charge(false, seq, 1)
	src := d.blocks[blk]
	if src == nil {
		for i := 0; i < BlockSize; i++ {
			p[i] = 0
		}
		return nil
	}
	copy(p[:BlockSize], src)
	return nil
}

// WriteAt writes block blk from p.
func (d *Device) WriteAt(blk int64, p []byte) error {
	if len(p) < BlockSize {
		return ErrShortBuffer
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if blk < 0 || blk >= int64(len(d.blocks)) {
		return fmt.Errorf("%w: write block %d of %d (%s)", ErrOutOfRange, blk, len(d.blocks), d.name)
	}
	seq := blk == d.lastWrite+1
	d.lastWrite = blk
	d.charge(true, seq, 1)
	d.storeLocked(blk, p)
	return nil
}

// ReadRun reads n consecutive blocks starting at blk.  The whole run is
// charged at the sequential read rate.
func (d *Device) ReadRun(blk int64, n int, fn func(i int, p []byte) error) error {
	if n <= 0 {
		return nil
	}
	d.mu.Lock()
	if blk < 0 || blk+int64(n) > int64(len(d.blocks)) {
		d.mu.Unlock()
		return fmt.Errorf("%w: read run [%d,%d) of %d (%s)", ErrOutOfRange, blk, blk+int64(n), len(d.blocks), d.name)
	}
	d.lastRead = blk + int64(n) - 1
	d.charge(false, true, n)
	buf := make([]byte, BlockSize)
	run := make([][]byte, n)
	for i := 0; i < n; i++ {
		run[i] = d.blocks[blk+int64(i)]
	}
	d.mu.Unlock()

	for i := 0; i < n; i++ {
		src := run[i]
		if src == nil {
			for j := range buf {
				buf[j] = 0
			}
		} else {
			copy(buf, src)
		}
		if err := fn(i, buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes len(pages) consecutive blocks starting at blk, charged at
// the sequential write rate.
func (d *Device) WriteRun(blk int64, pages [][]byte) error {
	n := len(pages)
	if n == 0 {
		return nil
	}
	for i, p := range pages {
		if len(p) < BlockSize {
			return fmt.Errorf("%w: run element %d", ErrShortBuffer, i)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if blk < 0 || blk+int64(n) > int64(len(d.blocks)) {
		return fmt.Errorf("%w: write run [%d,%d) of %d (%s)", ErrOutOfRange, blk, blk+int64(n), len(d.blocks), d.name)
	}
	d.lastWrite = blk + int64(n) - 1
	d.charge(true, true, n)
	for i, p := range pages {
		d.storeLocked(blk+int64(i), p)
	}
	return nil
}

// Stats returns a snapshot of the accumulated statistics.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats clears the statistics; block contents are untouched.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// BusyTime returns the accumulated service time of all operations.
func (d *Device) BusyTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Busy
}

// SnapshotContent returns a deep copy of the device's block contents.  It
// is used by the benchmark harness to clone a freshly loaded database so
// each experiment configuration starts from the same on-disk state.
func (d *Device) SnapshotContent() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, len(d.blocks))
	for i, b := range d.blocks {
		if b != nil {
			cp := make([]byte, BlockSize)
			copy(cp, b)
			out[i] = cp
		}
	}
	return out
}

// RestoreContent replaces the device contents with a snapshot previously
// obtained from SnapshotContent.  Statistics and sequentiality tracking are
// reset.  The device capacity becomes len(snapshot) blocks.
func (d *Device) RestoreContent(snapshot [][]byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks = make([][]byte, len(snapshot))
	for i, b := range snapshot {
		if b != nil {
			cp := make([]byte, BlockSize)
			copy(cp, b)
			d.blocks[i] = cp
		}
	}
	d.stats = Stats{}
	d.lastRead, d.lastWrite = -2, -2
}

// charge adds the service time of one command transferring n blocks of the
// given kind to the statistics.  Callers must hold d.mu.
//
// Random single-block commands cost 1/IOPS (which already includes all
// per-command overhead).  Sequential commands cost the profile's
// CmdOverhead once plus the bandwidth-derived per-block transfer time, so a
// run of n blocks is cheaper than n individual sequential commands.
func (d *Device) charge(write, seq bool, n int) {
	var t time.Duration
	if seq {
		t = d.profile.CmdOverhead + d.profile.ServiceTime(write, true)*time.Duration(n)
	} else {
		t = d.profile.ServiceTime(write, false) * time.Duration(n)
	}
	d.stats.Busy += t
	switch {
	case write && seq:
		d.stats.SeqWrites += int64(n)
	case write:
		d.stats.RandWrites += int64(n)
	case seq:
		d.stats.SeqReads += int64(n)
	default:
		d.stats.RandReads += int64(n)
	}
}

func (d *Device) storeLocked(blk int64, p []byte) {
	dst := d.blocks[blk]
	if dst == nil {
		dst = make([]byte, BlockSize)
		d.blocks[blk] = dst
	}
	copy(dst, p[:BlockSize])
}

// LoadLogical replaces the device contents with the given logical block
// images (index = block number) without charging any simulated I/O.  It is
// used by the benchmark harness to clone a pre-loaded database image into
// a fresh device.  Statistics are reset.
func (d *Device) LoadLogical(blocks [][]byte) {
	d.RestoreContent(blocks)
}
