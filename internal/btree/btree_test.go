package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

func testDB(t *testing.T) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		DataDev:     device.New("data", device.ProfileCheetah15K, 16384),
		LogDev:      device.New("log", device.ProfileCheetah15K, 32768),
		BufferPages: 128,
		Policy:      engine.PolicyNone,
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func ridFor(k uint64) page.RID {
	return page.RID{Page: page.ID(k + 1000), Slot: uint16(k % 7)}
}

func TestInsertGetSmall(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tree, err := Create(tx, "pk")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Name() != "pk" || tree.Root() == page.InvalidID {
		t.Fatal("bad tree handle")
	}
	for k := uint64(1); k <= 50; k++ {
		if err := tree.Insert(tx, k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 50; k++ {
		rid, found, err := tree.Get(tx, k)
		if err != nil || !found || rid != ridFor(k) {
			t.Fatalf("Get(%d) = %v %v %v", k, rid, found, err)
		}
	}
	if _, found, _ := tree.Get(tx, 999); found {
		t.Fatal("phantom key")
	}
	if err := tree.Insert(tx, 10, ridFor(10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	h, err := tree.Height(tx)
	if err != nil || h != 1 {
		t.Fatalf("Height = %d, %v (want 1)", h, err)
	}
	tx.Commit()
}

func TestInsertManyWithSplits(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tree, _ := Create(tx, "pk")
	const n = 3000 // several leaf splits and at least one root split
	keys := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range keys {
		if err := tree.Insert(tx, uint64(k), ridFor(uint64(k))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin()
	for k := 0; k < n; k++ {
		rid, found, err := tree.Get(tx2, uint64(k))
		if err != nil || !found {
			t.Fatalf("Get(%d) after splits = %v %v", k, found, err)
		}
		if rid != ridFor(uint64(k)) {
			t.Fatalf("Get(%d) rid = %v", k, rid)
		}
	}
	h, err := tree.Height(tx2)
	if err != nil || h < 2 {
		t.Fatalf("Height = %d, %v (want >= 2 after splits)", h, err)
	}
	// The root page id must not have changed.
	if tree.Root() != Attach("pk", tree.Root()).Root() {
		t.Fatal("root moved")
	}
	tx2.Commit()
}

func TestScanRange(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tree, _ := Create(tx, "pk")
	for k := uint64(0); k < 2000; k += 2 { // even keys only
		if err := tree.Insert(tx, k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tree.Scan(tx, 100, 140, func(k uint64, rid page.RID) error {
		got = append(got, k)
		if rid != ridFor(k) {
			t.Fatalf("rid mismatch for %d", k)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130, 132, 134, 136, 138, 140}
	if len(got) != len(want) {
		t.Fatalf("Scan returned %v", got)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	// Early stop.
	count := 0
	if err := tree.Scan(tx, 0, 1<<62, func(k uint64, rid page.RID) error {
		count++
		if count == 10 {
			return ErrStopScan
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty range.
	empty := 0
	if err := tree.Scan(tx, 3001, 3005, func(uint64, page.RID) error { empty++; return nil }); err != nil {
		t.Fatal(err)
	}
	if empty != 0 {
		t.Fatalf("empty range returned %d keys", empty)
	}
	tx.Commit()
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	tx, _ := db.Begin()
	tree, _ := Create(tx, "pk")
	for k := uint64(0); k < 500; k++ {
		tree.Insert(tx, k, ridFor(k))
	}
	for k := uint64(0); k < 500; k += 5 {
		if err := tree.Delete(tx, k); err != nil {
			t.Fatalf("Delete(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 500; k++ {
		_, found, err := tree.Get(tx, k)
		if err != nil {
			t.Fatal(err)
		}
		if (k%5 == 0) == found {
			t.Fatalf("key %d found=%v after deletes", k, found)
		}
	}
	if err := tree.Delete(tx, 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := tree.Delete(tx, 99999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	tx.Commit()
}

func TestInsertSequentialAndReverse(t *testing.T) {
	db := testDB(t)
	for name, gen := range map[string]func(i, n int) uint64{
		"ascending":  func(i, n int) uint64 { return uint64(i) },
		"descending": func(i, n int) uint64 { return uint64(n - i) },
	} {
		tx, _ := db.Begin()
		tree, _ := Create(tx, name)
		const n = 1500
		for i := 0; i < n; i++ {
			if err := tree.Insert(tx, gen(i, n), ridFor(gen(i, n))); err != nil {
				t.Fatalf("%s Insert(%d): %v", name, gen(i, n), err)
			}
		}
		// All keys present and in order via a full scan.
		var prev uint64
		count := 0
		if err := tree.Scan(tx, 0, 1<<63, func(k uint64, rid page.RID) error {
			if count > 0 && k <= prev {
				t.Fatalf("%s scan out of order: %d after %d", name, k, prev)
			}
			prev = k
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count != n {
			t.Fatalf("%s scan found %d keys, want %d", name, count, n)
		}
		tx.Commit()
	}
}

func TestTreeSurvivesCrashRecovery(t *testing.T) {
	dataDev := device.New("data", device.ProfileCheetah15K, 16384)
	logDev := device.New("log", device.ProfileCheetah15K, 32768)
	flashDev := device.New("flash", device.ProfileSamsung470, 4096)
	cfg := engine.Config{
		DataDev:        dataDev,
		LogDev:         logDev,
		FlashDev:       flashDev,
		BufferPages:    64,
		Policy:         engine.PolicyFaCEGSC,
		FlashFrames:    512,
		GroupSize:      16,
		SegmentEntries: 128,
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tree, _ := Create(tx, "pk")
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if err := tree.Insert(tx, k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash()

	cfg.Recover = true
	db2, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tree2 := Attach("pk", tree.Root())
	tx2, _ := db2.Begin()
	for k := uint64(0); k < n; k++ {
		rid, found, err := tree2.Get(tx2, k)
		if err != nil || !found || rid != ridFor(k) {
			t.Fatalf("after recovery Get(%d) = %v %v %v", k, rid, found, err)
		}
	}
	tx2.Commit()
}

func TestNodeCapacityConstants(t *testing.T) {
	if MaxLeafEntries < 100 || MaxInnerEntries < 100 {
		t.Fatalf("node capacities too small: leaf=%d inner=%d", MaxLeafEntries, MaxInnerEntries)
	}
	if leafHeader+MaxLeafEntries*leafEntrySize > page.PayloadSize {
		t.Fatal("leaf layout overflows the page payload")
	}
	if innerHeader+8+MaxInnerEntries*innerEntrySize > page.PayloadSize {
		t.Fatal("inner layout overflows the page payload")
	}
}
