// Package btree implements a disk-resident B+tree mapping uint64 keys to
// record ids.  It provides the primary-key indexes of the TPC-C tables.
//
// Node pages live in the database like any other page: all access goes
// through engine transactions, so index traffic competes for the DRAM
// buffer and the flash cache exactly as table traffic does — the hot inner
// nodes are precisely the kind of warm pages the paper's flash cache keeps
// close.
//
// The root page id never changes: when the root splits, its content moves
// to two freshly allocated children and the root becomes their parent.
// Deletes are lazy (no rebalancing), which is all the TPC-C Delivery
// transaction needs.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/page"
)

// Errors returned by the tree.
var (
	ErrDuplicate = errors.New("btree: duplicate key")
	ErrNotFound  = errors.New("btree: key not found")
)

// Node layout (within the page payload):
//
//	leaf:     [count u16][next u64] then count * (key u64, rid 10 bytes)
//	internal: [count u16] then (count+1) * child u64 interleaved with
//	          count * key u64:  child0 key0 child1 key1 ... childN
//
// Keys in an internal node separate children: child i holds keys < key i,
// child i+1 holds keys >= key i.
const (
	leafHeader     = 2 + 8
	leafEntrySize  = 8 + 10
	innerHeader    = 2
	innerEntrySize = 8 + 8 // key + child (plus one extra child pointer)

	// MaxLeafEntries and MaxInnerEntries are exported for tests and for
	// sizing databases.
	MaxLeafEntries  = (page.PayloadSize - leafHeader) / leafEntrySize
	MaxInnerEntries = (page.PayloadSize - innerHeader - 8) / innerEntrySize
)

// Tree is a B+tree handle.  The root page id is fixed for the lifetime of
// the tree.
type Tree struct {
	name string
	root page.ID
}

// Create allocates an empty tree (a single empty leaf serving as root).
func Create(tx *engine.Tx, name string) (*Tree, error) {
	root, err := tx.Alloc(page.TypeBTreeLeaf)
	if err != nil {
		return nil, fmt.Errorf("btree: creating %s: %w", name, err)
	}
	err = tx.Modify(root, func(buf page.Buf) error {
		initLeaf(buf, 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Tree{name: name, root: root}, nil
}

// Attach reconstructs a handle from a known root page.
func Attach(name string, root page.ID) *Tree { return &Tree{name: name, root: root} }

// Name returns the index name.
func (t *Tree) Name() string { return t.name }

// Root returns the root page id.
func (t *Tree) Root() page.ID { return t.root }

// --- node accessors -------------------------------------------------------

func payload(buf page.Buf) []byte { return buf.Payload() }

func initLeaf(buf page.Buf, next page.ID) {
	buf.SetType(page.TypeBTreeLeaf)
	p := payload(buf)
	binary.LittleEndian.PutUint16(p[0:], 0)
	binary.LittleEndian.PutUint64(p[2:], uint64(next))
}

func initInner(buf page.Buf) {
	buf.SetType(page.TypeBTreeInternal)
	binary.LittleEndian.PutUint16(payload(buf)[0:], 0)
}

func nodeCount(buf page.Buf) int { return int(binary.LittleEndian.Uint16(payload(buf)[0:])) }

func setNodeCount(buf page.Buf, n int) { binary.LittleEndian.PutUint16(payload(buf)[0:], uint16(n)) }

func leafNext(buf page.Buf) page.ID {
	return page.ID(binary.LittleEndian.Uint64(payload(buf)[2:]))
}

func setLeafNext(buf page.Buf, next page.ID) {
	binary.LittleEndian.PutUint64(payload(buf)[2:], uint64(next))
}

func leafKey(buf page.Buf, i int) uint64 {
	return binary.LittleEndian.Uint64(payload(buf)[leafHeader+i*leafEntrySize:])
}

func leafRID(buf page.Buf, i int) page.RID {
	return page.DecodeRID(payload(buf)[leafHeader+i*leafEntrySize+8:])
}

func setLeafEntry(buf page.Buf, i int, key uint64, rid page.RID) {
	off := leafHeader + i*leafEntrySize
	binary.LittleEndian.PutUint64(payload(buf)[off:], key)
	enc := page.EncodeRID(rid)
	copy(payload(buf)[off+8:], enc[:])
}

func copyLeafEntries(dst page.Buf, dstStart int, src page.Buf, srcStart, n int) {
	d := payload(dst)[leafHeader+dstStart*leafEntrySize:]
	s := payload(src)[leafHeader+srcStart*leafEntrySize : leafHeader+(srcStart+n)*leafEntrySize]
	copy(d, s)
}

func innerChild(buf page.Buf, i int) page.ID {
	return page.ID(binary.LittleEndian.Uint64(payload(buf)[innerHeader+i*innerEntrySize:]))
}

func setInnerChild(buf page.Buf, i int, child page.ID) {
	binary.LittleEndian.PutUint64(payload(buf)[innerHeader+i*innerEntrySize:], uint64(child))
}

func innerKey(buf page.Buf, i int) uint64 {
	return binary.LittleEndian.Uint64(payload(buf)[innerHeader+i*innerEntrySize+8:])
}

func setInnerKey(buf page.Buf, i int, key uint64) {
	binary.LittleEndian.PutUint64(payload(buf)[innerHeader+i*innerEntrySize+8:], key)
}

// --- lookup ----------------------------------------------------------------

// Get returns the RID stored under key.
func (t *Tree) Get(tx *engine.Tx, key uint64) (page.RID, bool, error) {
	id := t.root
	for {
		var (
			isLeaf bool
			next   page.ID
			rid    page.RID
			found  bool
		)
		err := tx.Read(id, func(buf page.Buf) error {
			if buf.Type() == page.TypeBTreeLeaf {
				isLeaf = true
				i, ok := leafSearch(buf, key)
				if ok {
					rid = leafRID(buf, i)
					found = true
				}
				return nil
			}
			next = childFor(buf, key)
			return nil
		})
		if err != nil {
			return page.RID{}, false, err
		}
		if isLeaf {
			return rid, found, nil
		}
		id = next
	}
}

// leafSearch returns the position of key in the leaf and whether it is
// present.  When absent, the position is where it would be inserted.
func leafSearch(buf page.Buf, key uint64) (int, bool) {
	n := nodeCount(buf)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		switch k := leafKey(buf, mid); {
		case k == key:
			return mid, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor returns the child page to follow for key in an internal node.
func childFor(buf page.Buf, key uint64) page.ID {
	n := nodeCount(buf)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(buf, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return innerChild(buf, lo)
}

// --- insert ----------------------------------------------------------------

// Insert adds key -> rid to the tree.  Inserting an existing key returns
// ErrDuplicate.
func (t *Tree) Insert(tx *engine.Tx, key uint64, rid page.RID) error {
	split, err := t.insertInto(tx, t.root, key, rid)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// The root split.  Keep the root page in place: move its current
	// content to a new left sibling and turn the root into an internal
	// node over (left, splitKey, right).
	leftID, err := tx.Alloc(page.TypeBTreeInternal)
	if err != nil {
		return err
	}
	var rootImage page.Buf
	if err := tx.Read(t.root, func(buf page.Buf) error {
		rootImage = buf.Clone()
		return nil
	}); err != nil {
		return err
	}
	if err := tx.Modify(leftID, func(buf page.Buf) error {
		copy(buf.Payload(), rootImage.Payload())
		buf.SetType(rootImage.Type())
		return nil
	}); err != nil {
		return err
	}
	return tx.Modify(t.root, func(buf page.Buf) error {
		initInner(buf)
		setNodeCount(buf, 1)
		setInnerChild(buf, 0, leftID)
		setInnerKey(buf, 0, split.key)
		setInnerChild(buf, 1, split.right)
		return nil
	})
}

// splitResult describes a child split that must be registered in the parent.
type splitResult struct {
	key   uint64
	right page.ID
}

func (t *Tree) insertInto(tx *engine.Tx, id page.ID, key uint64, rid page.RID) (*splitResult, error) {
	var (
		isLeaf bool
		child  page.ID
	)
	if err := tx.Read(id, func(buf page.Buf) error {
		if buf.Type() == page.TypeBTreeLeaf {
			isLeaf = true
			return nil
		}
		child = childFor(buf, key)
		return nil
	}); err != nil {
		return nil, err
	}

	if isLeaf {
		return t.insertIntoLeaf(tx, id, key, rid)
	}

	childSplit, err := t.insertInto(tx, child, key, rid)
	if err != nil {
		return nil, err
	}
	if childSplit == nil {
		return nil, nil
	}
	return t.insertIntoInner(tx, id, childSplit)
}

func (t *Tree) insertIntoLeaf(tx *engine.Tx, id page.ID, key uint64, rid page.RID) (*splitResult, error) {
	var needSplit bool
	err := tx.Modify(id, func(buf page.Buf) error {
		pos, found := leafSearch(buf, key)
		if found {
			return fmt.Errorf("%w: %d in %s", ErrDuplicate, key, t.name)
		}
		n := nodeCount(buf)
		if n >= MaxLeafEntries {
			needSplit = true
			return nil
		}
		// Shift entries right and insert.
		p := payload(buf)
		copy(p[leafHeader+(pos+1)*leafEntrySize:], p[leafHeader+pos*leafEntrySize:leafHeader+n*leafEntrySize])
		setLeafEntry(buf, pos, key, rid)
		setNodeCount(buf, n+1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !needSplit {
		return nil, nil
	}

	// Split the leaf: allocate a right sibling, move the upper half there,
	// then retry the insert into the appropriate half.
	rightID, err := tx.Alloc(page.TypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	var splitKey uint64
	var leftImage page.Buf
	if err := tx.Read(id, func(buf page.Buf) error {
		leftImage = buf.Clone()
		return nil
	}); err != nil {
		return nil, err
	}
	n := nodeCount(leftImage)
	half := n / 2
	splitKey = leafKey(leftImage, half)

	if err := tx.Modify(rightID, func(buf page.Buf) error {
		initLeaf(buf, leafNext(leftImage))
		copyLeafEntries(buf, 0, leftImage, half, n-half)
		setNodeCount(buf, n-half)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := tx.Modify(id, func(buf page.Buf) error {
		setNodeCount(buf, half)
		setLeafNext(buf, rightID)
		return nil
	}); err != nil {
		return nil, err
	}

	target := id
	if key >= splitKey {
		target = rightID
	}
	if _, err := t.insertIntoLeaf(tx, target, key, rid); err != nil {
		return nil, err
	}
	return &splitResult{key: splitKey, right: rightID}, nil
}

func (t *Tree) insertIntoInner(tx *engine.Tx, id page.ID, split *splitResult) (*splitResult, error) {
	var needSplit bool
	err := tx.Modify(id, func(buf page.Buf) error {
		n := nodeCount(buf)
		if n >= MaxInnerEntries {
			needSplit = true
			return nil
		}
		insertInnerEntry(buf, split.key, split.right)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !needSplit {
		return nil, nil
	}

	// Split the internal node around its median key.
	rightID, err := tx.Alloc(page.TypeBTreeInternal)
	if err != nil {
		return nil, err
	}
	var image page.Buf
	if err := tx.Read(id, func(buf page.Buf) error {
		image = buf.Clone()
		return nil
	}); err != nil {
		return nil, err
	}
	n := nodeCount(image)
	mid := n / 2
	upKey := innerKey(image, mid)

	if err := tx.Modify(rightID, func(buf page.Buf) error {
		initInner(buf)
		rightCount := n - mid - 1
		setNodeCount(buf, rightCount)
		setInnerChild(buf, 0, innerChild(image, mid+1))
		for i := 0; i < rightCount; i++ {
			setInnerKey(buf, i, innerKey(image, mid+1+i))
			setInnerChild(buf, i+1, innerChild(image, mid+2+i))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := tx.Modify(id, func(buf page.Buf) error {
		setNodeCount(buf, mid)
		return nil
	}); err != nil {
		return nil, err
	}

	target := id
	if split.key >= upKey {
		target = rightID
	}
	if err := tx.Modify(target, func(buf page.Buf) error {
		insertInnerEntry(buf, split.key, split.right)
		return nil
	}); err != nil {
		return nil, err
	}
	return &splitResult{key: upKey, right: rightID}, nil
}

// insertInnerEntry inserts (key, rightChild) into an internal node with
// space available.
func insertInnerEntry(buf page.Buf, key uint64, right page.ID) {
	n := nodeCount(buf)
	pos := 0
	for pos < n && innerKey(buf, pos) <= key {
		pos++
	}
	// Shift keys and children right of pos.
	for i := n; i > pos; i-- {
		setInnerKey(buf, i, innerKey(buf, i-1))
		setInnerChild(buf, i+1, innerChild(buf, i))
	}
	setInnerKey(buf, pos, key)
	setInnerChild(buf, pos+1, right)
	setNodeCount(buf, n+1)
}

// --- delete ----------------------------------------------------------------

// Delete removes key from the tree (lazy: leaves may underflow).
func (t *Tree) Delete(tx *engine.Tx, key uint64) error {
	leaf, err := t.findLeaf(tx, key)
	if err != nil {
		return err
	}
	return tx.Modify(leaf, func(buf page.Buf) error {
		pos, found := leafSearch(buf, key)
		if !found {
			return fmt.Errorf("%w: %d in %s", ErrNotFound, key, t.name)
		}
		n := nodeCount(buf)
		p := payload(buf)
		copy(p[leafHeader+pos*leafEntrySize:], p[leafHeader+(pos+1)*leafEntrySize:leafHeader+n*leafEntrySize])
		setNodeCount(buf, n-1)
		return nil
	})
}

func (t *Tree) findLeaf(tx *engine.Tx, key uint64) (page.ID, error) {
	id := t.root
	for {
		var (
			isLeaf bool
			next   page.ID
		)
		if err := tx.Read(id, func(buf page.Buf) error {
			if buf.Type() == page.TypeBTreeLeaf {
				isLeaf = true
				return nil
			}
			next = childFor(buf, key)
			return nil
		}); err != nil {
			return page.InvalidID, err
		}
		if isLeaf {
			return id, nil
		}
		id = next
	}
}

// --- range scan -------------------------------------------------------------

// ErrStopScan stops a Scan early without reporting an error.
var ErrStopScan = errors.New("btree: stop scan")

// Scan visits keys in [lo, hi] in ascending order.
func (t *Tree) Scan(tx *engine.Tx, lo, hi uint64, fn func(key uint64, rid page.RID) error) error {
	leaf, err := t.findLeaf(tx, lo)
	if err != nil {
		return err
	}
	for leaf != page.InvalidID {
		var next page.ID
		stop := false
		err := tx.Read(leaf, func(buf page.Buf) error {
			start, _ := leafSearch(buf, lo)
			n := nodeCount(buf)
			for i := start; i < n; i++ {
				k := leafKey(buf, i)
				if k > hi {
					stop = true
					return nil
				}
				if err := fn(k, leafRID(buf, i)); err != nil {
					return err
				}
			}
			next = leafNext(buf)
			return nil
		})
		if errors.Is(err, ErrStopScan) {
			return nil
		}
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		leaf = next
	}
	return nil
}

// Height returns the height of the tree (1 for a single leaf).  It is used
// by tests and diagnostics.
func (t *Tree) Height(tx *engine.Tx) (int, error) {
	h := 1
	id := t.root
	for {
		var (
			isLeaf bool
			next   page.ID
		)
		if err := tx.Read(id, func(buf page.Buf) error {
			if buf.Type() == page.TypeBTreeLeaf {
				isLeaf = true
				return nil
			}
			next = innerChild(buf, 0)
			return nil
		}); err != nil {
			return 0, err
		}
		if isLeaf {
			return h, nil
		}
		h++
		id = next
	}
}
