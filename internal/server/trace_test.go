package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/page"
	"github.com/reprolab/face/internal/server/client"
	"github.com/reprolab/face/internal/server/wire"
)

// startTracedServer runs the full faced stack — engine with tracing, a
// shared registry, and a server handed the engine's tracer — with a slow
// transaction threshold low enough that every write pins.
func startTracedServer(t *testing.T, slow time.Duration) (*testServer, *obs.Registry) {
	t.Helper()
	dir := t.TempDir()
	reg := obs.NewRegistry()
	db, err := engine.Open(engine.Config{
		Dir:             dir,
		BufferPages:     512,
		Policy:          engine.PolicyNone,
		PageLocks:       true,
		MaxWriters:      4,
		NoFsync:         true,
		Obs:             reg,
		SlowTxThreshold: slow,
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("engine.Open: %v", err)
	}
	srv, err := New(db, Config{Writers: 4, Obs: reg, Tracer: db.Tracer()})
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	ts := &testServer{srv: srv, db: db, dir: dir, addr: ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts.srv.Shutdown(ctx)
		ts.db.Close()
	})
	return ts, reg
}

// TestTraceServerPinsSlowRequest drives a traced client through the full
// stack and checks the journal: the slow write is pinned, its spans
// include both the server admission wait and the engine's commit phases,
// and the trace ID rides the op histogram as an exemplar.
func TestTraceServerPinsSlowRequest(t *testing.T) {
	ts, reg := startTracedServer(t, time.Nanosecond)
	c, err := client.Dial(ts.addr, client.Options{Trace: true})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if err := c.Create("tr"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("tr", 7, []byte("v")); err != nil {
		t.Fatal(err)
	}

	dump := ts.db.Tracer().Dump()
	var set *trace.TraceJSON
	for i := range dump.Pinned {
		if dump.Pinned[i].Kind == "set" {
			set = &dump.Pinned[i]
		}
	}
	if set == nil {
		t.Fatalf("no pinned set trace in journal: %+v", dump.Pinned)
	}
	if len(set.Pins) == 0 || set.Pins[0].Kind != trace.PinSlow {
		t.Fatalf("pins = %+v, want slow_tx", set.Pins)
	}
	names := make(map[string]bool)
	for _, sp := range set.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"server_admission", "wal_append", "durable_wait"} {
		if !names[want] {
			t.Errorf("span %q missing from %+v", want, set.Spans)
		}
	}

	// The set op histogram carries the trace ID as a bucket exemplar.
	h := reg.Histogram(`face_server_op_seconds{op="set"}`)
	exemplars := h.Snapshot().ExemplarList()
	if len(exemplars) == 0 {
		t.Fatal("op histogram has no exemplars")
	}
	found := false
	for _, ex := range exemplars {
		if ex.TraceID == set.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("pinned trace %s not among exemplars %+v", set.ID, exemplars)
	}
}

// TestTraceServerAdoptsWireID sends a raw frame carrying a known trace ID
// and finds that exact ID in the journal — the propagation path a real
// client uses.
func TestTraceServerAdoptsWireID(t *testing.T) {
	ts, _ := startTracedServer(t, time.Nanosecond)
	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	br := bufio.NewReader(nc)

	send := func(req *wire.Request) *wire.Response {
		t.Helper()
		if err := wire.WriteRequest(bw, req); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := send(&wire.Request{Op: wire.OpCreate, NS: "raw"}); resp.Status != wire.StatusOK {
		t.Fatalf("create: %d", resp.Status)
	}
	const id = 0xdeadbeefcafef00d
	resp := send(&wire.Request{
		Op: wire.OpSet, NS: "raw", Key: 1, Value: []byte("x"),
		Flags: wire.FlagTrace, TraceID: id,
	})
	if resp.Status != wire.StatusOK {
		t.Fatalf("set: %d", resp.Status)
	}

	want := fmt.Sprintf("%016x", uint64(id))
	dump := ts.db.Tracer().Dump()
	for _, tr := range dump.Pinned {
		if tr.ID == want {
			return
		}
	}
	t.Fatalf("trace %s not in pinned journal: %+v", want, dump.Pinned)
}

// TestTraceServerMintsForOldClients checks that requests without the wire
// extension (an old client) still enter the journal under server-minted
// IDs.
func TestTraceServerMintsForOldClients(t *testing.T) {
	ts, _ := startTracedServer(t, time.Nanosecond)
	c, err := client.Dial(ts.addr, client.Options{}) // Trace off
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Create("old"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("old", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := ts.db.Tracer().Stats()
	if st.Started == 0 || st.Completed == 0 || st.Pinned == 0 {
		t.Fatalf("stats = %+v, want traces started/completed/pinned", st)
	}
}

// TestTraceFinishPinsAnomalies unit-tests finishTrace's error mapping:
// a deadlock victim is pinned with its wait-for cycle, a shed request
// with the BUSY it returned.
func TestTraceFinishPinsAnomalies(t *testing.T) {
	tr := trace.New(trace.Config{})
	s := &Server{cfg: Config{Tracer: tr}}

	victim := tr.Start(0, "commit")
	derr := &lock.DeadlockError{
		Tx: 2, Page: 1, Mode: lock.Exclusive,
		Cycle: []lock.WaitEdge{{Tx: 2, Page: 1}, {Tx: 1, Page: 2}},
		Held:  []page.ID{2},
	}
	s.finishTrace(victim, fmt.Errorf("commit: %w", derr))

	shed := tr.Start(0, "set")
	s.finishTrace(shed, fmt.Errorf("wrapped: %w", ErrBusy))

	dump := tr.Dump()
	if len(dump.Pinned) != 2 {
		t.Fatalf("pinned = %+v, want 2 traces", dump.Pinned)
	}
	byKind := make(map[trace.PinKind]string)
	for _, p := range dump.Pinned {
		if len(p.Pins) != 1 {
			t.Fatalf("pins = %+v", p.Pins)
		}
		byKind[p.Pins[0].Kind] = p.Pins[0].Detail
	}
	if !strings.Contains(byKind[trace.PinDeadlock], "tx 2→page 1, tx 1→page 2") {
		t.Errorf("deadlock pin detail = %q, want the cycle", byKind[trace.PinDeadlock])
	}
	if !strings.Contains(byKind[trace.PinShed], "admission queue full") {
		t.Errorf("shed pin detail = %q", byKind[trace.PinShed])
	}
	// Two anomalies → the flight-recorder burst counter moved.
	if n := tr.Stats().Pinned; n != 2 {
		t.Errorf("Stats().Pinned = %d, want 2", n)
	}
}

// TestTraceServerAdmissionRefusedSpan checks acquire's refused path: a
// request shed by admission still records its server_admission span.
func TestTraceServerAdmissionRefusedSpan(t *testing.T) {
	tr := trace.New(trace.Config{})
	s := &Server{cfg: Config{Tracer: tr}, adm: newAdmission(1, 0)}
	if err := s.adm.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.Release()

	req := tr.Start(0, "set")
	err := s.acquire(context.Background(), req)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("acquire = %v, want ErrBusy", err)
	}
	spans := req.Spans()
	if len(spans) != 1 || spans[0].Name != "server_admission" || spans[0].Note != "refused" {
		t.Fatalf("spans = %+v, want one refused server_admission span", spans)
	}
}
