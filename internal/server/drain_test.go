package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/server/client"
	"github.com/reprolab/face/internal/server/wire"
)

// startDrainServer is startServer without the cleanup Shutdown: drain
// tests shut down themselves and assert on the result.
func startDrainServer(t *testing.T, cfg Config, writers int) (*Server, *engine.DB, string, string) {
	t.Helper()
	dir := t.TempDir()
	db := openDir(t, dir, writers)
	srv, err := New(db, cfg)
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	return srv, db, dir, ln.Addr().String()
}

// TestDrainInFlightCommits: a batch open when Shutdown begins still
// commits, new connections are refused, and the committed state survives
// close-and-reopen — drain plus restart IS the recovery path.
func TestDrainInFlightCommits(t *testing.T) {
	srv, db, dir, addr := startDrainServer(t, Config{}, 4)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Create("drain"); err != nil {
		t.Fatal(err)
	}
	txn, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := txn.Set("drain", k, []byte("survives")); err != nil {
			t.Fatal(err)
		}
	}

	// Start draining with the batch still open.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Wait until the server stops accepting, so the drain has begun.
	refused := false
	for i := 0; i < 200; i++ {
		nc, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			refused = true
			break
		}
		nc.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Fatal("server kept accepting connections after Shutdown began")
	}

	// The in-flight batch must still commit.
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit during drain: %v", err)
	}
	c.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("db.Close: %v", err)
	}

	// Reopen from the same directory: restart is recovery.
	db2 := openDir(t, dir, 4)
	defer db2.Close()
	srv2, err := New(db2, Config{})
	if err != nil {
		t.Fatalf("New after reopen: %v", err)
	}
	ns, err := srv2.Store().Namespace("drain")
	if err != nil {
		t.Fatalf("namespace lost across restart: %v", err)
	}
	err = db2.View(context.Background(), func(tx *engine.Tx) error {
		for k := uint64(0); k < 10; k++ {
			val, found, err := ns.Get(tx, k)
			if err != nil || !found {
				t.Fatalf("key %d lost across restart: found=%v err=%v", k, found, err)
			}
			if string(val) != "survives" {
				t.Fatalf("key %d = %q after restart", k, val)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv // keep the drained server alive until here
}

// TestDrainRefusesNewRequests: a connection that was idle through the
// drain gets CLOSED for new requests rather than a hang.
func TestDrainRefusesNewRequests(t *testing.T) {
	srv, db, _, addr := startDrainServer(t, Config{}, 2)
	defer db.Close()
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Create("idle"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained server closed the connection; the request must fail
	// fast with a connection or CLOSED error, never hang.
	errCh := make(chan error, 1)
	go func() { errCh <- c.Set("idle", 1, []byte("late")) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("write after drain succeeded")
		}
		if !errors.Is(err, client.ErrClosed) && !errors.Is(err, client.ErrConnClosed) {
			t.Fatalf("write after drain = %v, want closed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request against a drained server hung")
	}
}

// TestDrainCloseUnderLoadNeverHangs hammers the server from many
// goroutines and calls Shutdown with a short deadline mid-flight.
// Shutdown must return (forcing stragglers via context cancellation) and
// db.Close must succeed: SIGTERM during load can never hang faced.
func TestDrainCloseUnderLoadNeverHangs(t *testing.T) {
	srv, db, _, addr := startDrainServer(t, Config{Writers: 2, Queue: 8}, 2)
	c, err := client.Dial(addr, client.Options{Conns: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Create("load"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var sent atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the drain begins; the point is
				// that nothing blocks forever.
				_ = c.Set("load", uint64(w*1000+i%500), []byte("x"))
				sent.Add(1)
			}
		}(w)
	}
	// Let load build, then shut down with a tight deadline.
	for sent.Load() < 50 {
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		defer cancel()
		srv.Shutdown(ctx) // a deadline error is acceptable; hanging is not
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown under load did not return")
	}
	close(stop)
	wg.Wait()

	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("db.Close after forced drain: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("db.Close after forced drain hung")
	}
}

// TestDrainDoubleShutdown: Shutdown is idempotent.
func TestDrainDoubleShutdown(t *testing.T) {
	srv, db, _, _ := startDrainServer(t, Config{}, 2)
	defer db.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("first Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestDrainRejectsFreshConnections: a connection accepted just before
// listeners close still gets CLOSED responses, not service.
func TestDrainRejectsFreshConnState(t *testing.T) {
	srv, db, _, addr := startDrainServer(t, Config{}, 2)
	defer db.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Dialing a drained server must fail outright.
	if nc, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		nc.Close()
		t.Fatal("drained server accepted a connection")
	}
	// And its stats must still be readable.
	st := srv.Stats()
	if st.Requests != 0 {
		t.Fatalf("idle server counted %d requests", st.Requests)
	}
	_ = wire.StatusClosed
}
