// Package wire defines the length-prefixed binary protocol spoken
// between faced and its clients.  Both internal/server and
// internal/server/client encode and decode through this package, so the
// frame layout lives in exactly one place.
//
// Every frame is a 4-byte little-endian length followed by that many
// bytes of body.  Request body:
//
//	offset  size  field
//	0       1     opcode
//	1       4     sequence number (echoed in the response)
//	5       4     deadline in milliseconds (0 = server default)
//	9       1     namespace length
//	10      n     namespace
//	...           op-specific payload
//
// Op-specific payloads:
//
//	Get/Del:  key u64
//	Set:      key u64, value length u32, value bytes
//	Scan:     lo u64, hi u64, limit u32
//	others:   empty
//
// After the op-specific payload a request may carry an optional
// extension block: one flags byte followed by the payloads of the set
// flag bits in bit order.  Bit 0 (FlagTrace) carries a u64 trace ID.
// The block is backward compatible in both directions: decoders have
// always ignored bytes past the op payload, so an old server simply
// skips the extension, and an old client simply omits it.  A decoder
// that meets a flag bit it does not know stops interpreting there (it
// cannot know the payload's length) — the frame's length prefix means
// unknown extensions can never desynchronize the stream, only go
// unread.
//
// Response body:
//
//	offset  size  field
//	0       1     status
//	1       4     sequence number
//	5       ...   status/op-specific payload
//
// An OK Get carries [value length u32][value]; an OK Scan carries
// [count u32] then count * ([key u64][value length u32][value]); any
// non-OK status carries [message length u32][message].  Responses to one
// connection are delivered in request order, so a client may pipeline:
// the sequence number is a convenience for demultiplexing concurrent
// callers, not a reordering mechanism.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds a frame body; larger frames are a protocol error.
const MaxFrame = 1 << 20

// Opcodes.
const (
	OpPing byte = iota + 1
	OpCreate
	OpGet
	OpSet
	OpDel
	OpScan
	OpBegin
	OpCommit
	OpAbort
)

// OpName names an opcode for diagnostics.
func OpName(op byte) string {
	switch op {
	case OpPing:
		return "PING"
	case OpCreate:
		return "CREATE"
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// Response statuses.
const (
	// StatusOK is a successful request.
	StatusOK byte = iota + 1
	// StatusNotFound is a Get or Del of a key that does not exist.
	StatusNotFound
	// StatusBusy is a retryable refusal: admission control shed the
	// request under overload, or the transaction lost a deadlock.  The
	// client should back off and retry.
	StatusBusy
	// StatusTimeout is a request whose deadline expired or whose context
	// was cancelled mid-flight; the transaction was rolled back.
	StatusTimeout
	// StatusClosed is a request received while the server is draining or
	// after the engine closed; the connection will not serve again.
	StatusClosed
	// StatusErr is any other failure; the message explains it.
	StatusErr
)

// StatusName names a status for diagnostics.
func StatusName(s byte) string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBusy:
		return "BUSY"
	case StatusTimeout:
		return "TIMEOUT"
	case StatusClosed:
		return "CLOSED"
	case StatusErr:
		return "ERR"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// ErrFrameTooLarge reports a frame beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Request extension flag bits.
const (
	// FlagTrace marks a u64 trace ID following the flags byte: the
	// client minted a request-scoped trace and wants server-side spans
	// attributed to it.
	FlagTrace byte = 1 << 0
)

// Request is one decoded client request.
type Request struct {
	Op         byte
	Seq        uint32
	DeadlineMS uint32
	NS         string
	Key        uint64 // Get, Set, Del
	Lo, Hi     uint64 // Scan
	Limit      uint32 // Scan
	Value      []byte // Set
	// Flags and TraceID are the optional trailing extension; both zero
	// on frames from clients that predate it.
	Flags   byte
	TraceID uint64
}

// Response is one decoded server response.  Body is the status/op-specific
// payload; the Decode* helpers interpret it.
type Response struct {
	Status byte
	Seq    uint32
	Body   []byte
}

// KV is one Scan result pair.
type KV struct {
	Key   uint64
	Value []byte
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return body, nil
}

func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteRequest encodes and writes one request frame.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.NS) > 255 {
		return fmt.Errorf("wire: namespace %q too long", req.NS)
	}
	body := make([]byte, 0, 10+len(req.NS)+recSize(req))
	body = append(body, req.Op)
	body = binary.LittleEndian.AppendUint32(body, req.Seq)
	body = binary.LittleEndian.AppendUint32(body, req.DeadlineMS)
	body = append(body, byte(len(req.NS)))
	body = append(body, req.NS...)
	switch req.Op {
	case OpGet, OpDel:
		body = binary.LittleEndian.AppendUint64(body, req.Key)
	case OpSet:
		body = binary.LittleEndian.AppendUint64(body, req.Key)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(req.Value)))
		body = append(body, req.Value...)
	case OpScan:
		body = binary.LittleEndian.AppendUint64(body, req.Lo)
		body = binary.LittleEndian.AppendUint64(body, req.Hi)
		body = binary.LittleEndian.AppendUint32(body, req.Limit)
	}
	if req.Flags != 0 {
		body = append(body, req.Flags)
		if req.Flags&FlagTrace != 0 {
			body = binary.LittleEndian.AppendUint64(body, req.TraceID)
		}
	}
	return writeFrame(w, body)
}

func recSize(req *Request) int {
	n := 0
	switch req.Op {
	case OpGet, OpDel:
		n = 8
	case OpSet:
		n = 12 + len(req.Value)
	case OpScan:
		n = 20
	}
	if req.Flags != 0 {
		n += 9
	}
	return n
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(body) < 10 {
		return nil, fmt.Errorf("wire: request frame of %d bytes is shorter than its header", len(body))
	}
	req := &Request{
		Op:         body[0],
		Seq:        binary.LittleEndian.Uint32(body[1:]),
		DeadlineMS: binary.LittleEndian.Uint32(body[5:]),
	}
	nsLen := int(body[9])
	rest := body[10:]
	if len(rest) < nsLen {
		return nil, fmt.Errorf("wire: request namespace truncated")
	}
	req.NS = string(rest[:nsLen])
	rest = rest[nsLen:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("wire: %s payload truncated (%d of %d bytes)", OpName(req.Op), len(rest), n)
		}
		return nil
	}
	switch req.Op {
	case OpGet, OpDel:
		if err := need(8); err != nil {
			return nil, err
		}
		req.Key = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
	case OpSet:
		if err := need(12); err != nil {
			return nil, err
		}
		req.Key = binary.LittleEndian.Uint64(rest)
		vlen := int(binary.LittleEndian.Uint32(rest[8:]))
		if len(rest) < 12+vlen {
			return nil, fmt.Errorf("wire: SET value truncated")
		}
		req.Value = rest[12 : 12+vlen]
		rest = rest[12+vlen:]
	case OpScan:
		if err := need(20); err != nil {
			return nil, err
		}
		req.Lo = binary.LittleEndian.Uint64(rest)
		req.Hi = binary.LittleEndian.Uint64(rest[8:])
		req.Limit = binary.LittleEndian.Uint32(rest[16:])
		rest = rest[20:]
	}
	readExtension(req, rest)
	return req, nil
}

// readExtension decodes the optional trailing flags block.  It is
// deliberately forgiving: a truncated or unrecognized extension is
// treated as absent rather than as a protocol error, because every
// frame that reaches here already parsed a complete request — the
// extension only adds forensics, never semantics.
func readExtension(req *Request, rest []byte) {
	if len(rest) == 0 {
		return
	}
	flags := rest[0]
	rest = rest[1:]
	if flags&FlagTrace != 0 && len(rest) >= 8 {
		req.Flags |= FlagTrace
		req.TraceID = binary.LittleEndian.Uint64(rest)
	}
	// Any further flag bits have payloads this decoder cannot size, so
	// interpretation stops here; the length prefix already consumed the
	// bytes, so the stream stays framed.
}

// WriteResponse encodes and writes one response frame.
func WriteResponse(w io.Writer, resp *Response) error {
	body := make([]byte, 0, 5+len(resp.Body))
	body = append(body, resp.Status)
	body = binary.LittleEndian.AppendUint32(body, resp.Seq)
	body = append(body, resp.Body...)
	return writeFrame(w, body)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(body) < 5 {
		return nil, fmt.Errorf("wire: response frame of %d bytes is shorter than its header", len(body))
	}
	return &Response{
		Status: body[0],
		Seq:    binary.LittleEndian.Uint32(body[1:]),
		Body:   body[5:],
	}, nil
}

// ValueBody encodes an OK Get payload.
func ValueBody(val []byte) []byte {
	body := make([]byte, 0, 4+len(val))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(val)))
	return append(body, val...)
}

// DecodeValue decodes an OK Get payload.
func DecodeValue(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, errors.New("wire: value payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body) < 4+n {
		return nil, errors.New("wire: value bytes truncated")
	}
	return body[4 : 4+n], nil
}

// PairsBody encodes an OK Scan payload.
func PairsBody(pairs []KV) []byte {
	size := 4
	for _, p := range pairs {
		size += 12 + len(p.Value)
	}
	body := make([]byte, 0, size)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(pairs)))
	for _, p := range pairs {
		body = binary.LittleEndian.AppendUint64(body, p.Key)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(p.Value)))
		body = append(body, p.Value...)
	}
	return body
}

// DecodePairs decodes an OK Scan payload.
func DecodePairs(body []byte) ([]KV, error) {
	if len(body) < 4 {
		return nil, errors.New("wire: scan payload truncated")
	}
	count := int(binary.LittleEndian.Uint32(body))
	body = body[4:]
	pairs := make([]KV, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 12 {
			return nil, errors.New("wire: scan pair truncated")
		}
		key := binary.LittleEndian.Uint64(body)
		vlen := int(binary.LittleEndian.Uint32(body[8:]))
		if len(body) < 12+vlen {
			return nil, errors.New("wire: scan value truncated")
		}
		pairs = append(pairs, KV{Key: key, Value: body[12 : 12+vlen]})
		body = body[12+vlen:]
	}
	return pairs, nil
}

// MessageBody encodes a non-OK status payload.
func MessageBody(msg string) []byte {
	body := make([]byte, 0, 4+len(msg))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(msg)))
	return append(body, msg...)
}

// DecodeMessage decodes a non-OK status payload; a malformed payload
// yields an empty message rather than an error (the status already tells
// the story).
func DecodeMessage(body []byte) string {
	if len(body) < 4 {
		return ""
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body) < 4+n {
		return ""
	}
	return string(body[4 : 4+n])
}
