package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
)

// allOps is every request opcode the protocol defines.
var allOps = []byte{OpPing, OpCreate, OpGet, OpSet, OpDel, OpScan, OpBegin, OpCommit, OpAbort}

func sampleRequest(op byte) *Request {
	req := &Request{Op: op, Seq: 42, DeadlineMS: 250, NS: "bench"}
	switch op {
	case OpGet, OpDel:
		req.Key = 0x1122334455667788
	case OpSet:
		req.Key = 7
		req.Value = []byte("hello, trace")
	case OpScan:
		req.Lo, req.Hi, req.Limit = 10, 99, 16
	}
	return req
}

// sameOpFields compares everything except the extension fields.
func sameOpFields(t *testing.T, got, want *Request) {
	t.Helper()
	g, w := *got, *want
	g.Flags, g.TraceID = 0, 0
	w.Flags, w.TraceID = 0, 0
	if g.Value == nil {
		g.Value = []byte{}
	}
	if w.Value == nil {
		w.Value = []byte{}
	}
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("op fields differ:\n got %+v\nwant %+v", g, w)
	}
}

// A traced client talking to the current server: every opcode must
// round-trip both its op fields and the trace extension.
func TestWireTraceRoundTripEveryOpcode(t *testing.T) {
	for _, op := range allOps {
		req := sampleRequest(op)
		req.Flags = FlagTrace
		req.TraceID = 0xfeedface00000000 + uint64(op)
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("%s: write: %v", OpName(op), err)
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("%s: read: %v", OpName(op), err)
		}
		sameOpFields(t, got, req)
		if got.Flags&FlagTrace == 0 || got.TraceID != req.TraceID {
			t.Fatalf("%s: trace extension lost: flags=%x id=%x", OpName(op), got.Flags, got.TraceID)
		}
	}
}

// An untraced (pre-extension) client talking to the current server:
// the decoder must see zero Flags/TraceID and identical op fields.
func TestWireTraceOldClientNewServer(t *testing.T) {
	for _, op := range allOps {
		req := sampleRequest(op)
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("%s: write: %v", OpName(op), err)
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("%s: read: %v", OpName(op), err)
		}
		sameOpFields(t, got, req)
		if got.Flags != 0 || got.TraceID != 0 {
			t.Fatalf("%s: phantom extension: flags=%x id=%x", OpName(op), got.Flags, got.TraceID)
		}
	}
}

// A traced client talking to an old server.  The old decoder parsed the
// op payload and ignored everything after it, so "old server" behavior
// is exactly: op fields must decode from a traced frame as if the
// extension were absent.  oldDecodeRequest reimplements that historical
// decoder verbatim to keep the property pinned.
func TestWireTraceNewClientOldServer(t *testing.T) {
	for _, op := range allOps {
		req := sampleRequest(op)
		req.Flags = FlagTrace
		req.TraceID = 0xabad1dea
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("%s: write: %v", OpName(op), err)
		}
		got, err := oldDecodeRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("%s: old decoder rejected traced frame: %v", OpName(op), err)
		}
		sameOpFields(t, got, req)
	}
}

// oldDecodeRequest is the pre-extension ReadRequest: it stops after the
// op payload and never looks at trailing bytes.
func oldDecodeRequest(r *bufio.Reader) (*Request, error) {
	body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	req := &Request{
		Op:         body[0],
		Seq:        binary.LittleEndian.Uint32(body[1:]),
		DeadlineMS: binary.LittleEndian.Uint32(body[5:]),
	}
	nsLen := int(body[9])
	rest := body[10:]
	req.NS = string(rest[:nsLen])
	rest = rest[nsLen:]
	switch req.Op {
	case OpGet, OpDel:
		req.Key = binary.LittleEndian.Uint64(rest)
	case OpSet:
		req.Key = binary.LittleEndian.Uint64(rest)
		vlen := int(binary.LittleEndian.Uint32(rest[8:]))
		req.Value = rest[12 : 12+vlen]
	case OpScan:
		req.Lo = binary.LittleEndian.Uint64(rest)
		req.Hi = binary.LittleEndian.Uint64(rest[8:])
		req.Limit = binary.LittleEndian.Uint32(rest[16:])
	}
	return req, nil
}

// An unknown flag bit — whose payload this decoder cannot size — must
// neither error nor desynchronize the stream: the frame after it must
// decode intact.
func TestWireTraceUnknownFlagBitNoDesync(t *testing.T) {
	for _, op := range allOps {
		var stream bytes.Buffer

		// Frame 1: valid op payload + flags byte with an unknown bit and
		// an arbitrary payload the decoder cannot interpret.
		req := sampleRequest(op)
		var f1 bytes.Buffer
		if err := WriteRequest(&f1, req); err != nil {
			t.Fatal(err)
		}
		frame := f1.Bytes()
		body := append([]byte(nil), frame[4:]...)
		body = append(body, 0x80)                         // unknown flag bit
		body = append(body, 0xde, 0xad, 0xbe, 0xef, 0x01) // unparseable payload
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(body)))
		stream.Write(frame[:4])
		stream.Write(body)

		// Frame 2: a traced Set that must survive whatever frame 1 did
		// to the decoder.
		follow := sampleRequest(OpSet)
		follow.Flags = FlagTrace
		follow.TraceID = 0x1234
		if err := WriteRequest(&stream, follow); err != nil {
			t.Fatal(err)
		}

		r := bufio.NewReader(&stream)
		got1, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("%s: unknown flag bit errored: %v", OpName(op), err)
		}
		sameOpFields(t, got1, req)
		if got1.Flags != 0 || got1.TraceID != 0 {
			t.Fatalf("%s: unknown bit misread as trace: flags=%x id=%x", OpName(op), got1.Flags, got1.TraceID)
		}
		got2, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("%s: stream desynced after unknown flag: %v", OpName(op), err)
		}
		sameOpFields(t, got2, follow)
		if got2.TraceID != 0x1234 {
			t.Fatalf("%s: follow-up trace lost: %x", OpName(op), got2.TraceID)
		}
	}
}

// Fuzz-style: random trailing junk after a valid op payload must never
// error, never corrupt op fields, and never desync the next frame.
func TestWireTraceFuzzTrailingJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		op := allOps[rng.Intn(len(allOps))]
		req := sampleRequest(op)

		var f bytes.Buffer
		if err := WriteRequest(&f, req); err != nil {
			t.Fatal(err)
		}
		frame := f.Bytes()
		body := append([]byte(nil), frame[4:]...)
		junk := make([]byte, rng.Intn(24))
		rng.Read(junk)
		body = append(body, junk...)

		var stream bytes.Buffer
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
		stream.Write(hdr[:])
		stream.Write(body)
		next := sampleRequest(OpPing)
		if err := WriteRequest(&stream, next); err != nil {
			t.Fatal(err)
		}

		r := bufio.NewReader(&stream)
		got, err := ReadRequest(r)
		if err != nil {
			t.Fatalf("iter %d %s junk %x: %v", i, OpName(op), junk, err)
		}
		sameOpFields(t, got, req)
		if len(junk) > 0 && junk[0]&FlagTrace != 0 && len(junk) >= 9 {
			if got.TraceID != binary.LittleEndian.Uint64(junk[1:]) {
				t.Fatalf("iter %d: junk that forms a valid extension must decode as one", i)
			}
		}
		got2, err := ReadRequest(r)
		if err != nil || got2.Op != OpPing || got2.Seq != next.Seq {
			t.Fatalf("iter %d: desync after junk tail: %v %+v", i, err, got2)
		}
	}
}

// A truncated trace extension (flag set, fewer than 8 ID bytes) is
// treated as absent, not as a protocol error.
func TestWireTraceTruncatedExtensionIgnored(t *testing.T) {
	req := sampleRequest(OpGet)
	var f bytes.Buffer
	if err := WriteRequest(&f, req); err != nil {
		t.Fatal(err)
	}
	frame := f.Bytes()
	body := append([]byte(nil), frame[4:]...)
	body = append(body, FlagTrace, 0x01, 0x02) // claims a trace ID, delivers 2 bytes

	var stream bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	stream.Write(hdr[:])
	stream.Write(body)

	got, err := ReadRequest(bufio.NewReader(&stream))
	if err != nil {
		t.Fatalf("truncated extension errored: %v", err)
	}
	sameOpFields(t, got, req)
	if got.Flags != 0 || got.TraceID != 0 {
		t.Fatalf("truncated extension misread: flags=%x id=%x", got.Flags, got.TraceID)
	}
}
