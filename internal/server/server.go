// Package server is faced's network front end: a TCP server exposing the
// engine's KV namespaces (internal/kv) over the length-prefixed binary
// protocol of internal/server/wire.
//
// Each connection gets a reader/writer goroutine pair.  The reader
// decodes and executes requests in arrival order; the writer streams the
// responses back, flushing opportunistically — so a client may pipeline
// any number of requests without waiting, and responses come back in
// request order.
//
// Write requests pass through an admission controller that generalizes
// the engine's WithMaxWriters semaphore to the network edge: a bounded
// number of writer tokens plus a bounded wait queue, with everything
// beyond both shed immediately as a retryable BUSY (see admission.go).
// Deadlock victims surface as BUSY too: in both cases the right client
// move is to back off and retry.
//
// Every request runs under a context bounded by the client-supplied
// deadline and the server's RequestTimeout, propagated into View/Update,
// so an expired or cancelled request aborts promptly even while queued
// on page locks.
//
// BEGIN opens a per-connection batch: SET and DEL are buffered (last
// write per key wins), GET and SCAN merge the buffered overlay over a
// committed snapshot, and COMMIT applies the whole batch as one Update
// transaction — one admission token, one commit force — in deterministic
// (namespace, key) order to keep lock acquisition order stable across
// concurrent batches.  A batch whose COMMIT fails with BUSY or TIMEOUT
// stays buffered so the client can retry COMMIT; ABORT drops it.
//
// Shutdown drains gracefully: listeners close, requests already
// executing finish (new ones are refused with CLOSED), stragglers past
// the drain deadline are cancelled through their request contexts, and
// only then do connections close.  The engine is left to the caller to
// Close; reopening the same directory afterwards is the ordinary
// recovery path.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/kv"
	"github.com/reprolab/face/internal/lock"
	"github.com/reprolab/face/internal/obs"
	"github.com/reprolab/face/internal/obs/trace"
	"github.com/reprolab/face/internal/server/wire"
)

// Defaults for Config fields left zero.
const (
	DefaultWriters        = 8
	DefaultRequestTimeout = 5 * time.Second
)

// Config tunes a Server.
type Config struct {
	// Writers bounds concurrently executing write requests (single-op
	// writes, CREATEs and batch COMMITs).  Default DefaultWriters.  It
	// should match the engine's MaxWriters so the admission edge and the
	// group-commit fan-in hint agree.
	Writers int
	// Queue bounds how many write requests may wait for a writer token
	// beyond those executing; arrivals past it get BUSY.  Default
	// 4*Writers; negative disables waiting (immediate BUSY when all
	// tokens are taken).
	Queue int
	// RequestTimeout caps every request's context deadline, including
	// client-supplied ones.  Default DefaultRequestTimeout; negative
	// means no server-side cap.
	RequestTimeout time.Duration
	// Logf, when set, receives server lifecycle diagnostics.
	Logf func(format string, args ...any)
	// Obs, when set, receives the server's request metrics: per-op
	// latency histograms (face_server_op_seconds{op="..."}), in-flight
	// and queue-depth gauges and admission counters.  faced passes the
	// engine's registry here so /metrics serves both layers.
	Obs *obs.Registry
	// Tracer, when set, gives every request a span trace: the server
	// adopts the client's wire trace ID (minting one otherwise), times
	// the admission wait, hands the trace to the engine through the
	// request context so the commit-path phases attach as spans, and
	// seals it with the tail-retention policy — deadlock victims and
	// admission sheds are pinned.  faced passes engine.DB.Tracer here.
	Tracer *trace.Tracer
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	Requests  int64          `json:"requests"`
	OK        int64          `json:"ok"`
	NotFound  int64          `json:"not_found"`
	Busy      int64          `json:"busy"`
	Timeout   int64          `json:"timeout"`
	Closed    int64          `json:"closed"`
	Errors    int64          `json:"errors"`
	Admission AdmissionStats `json:"admission"`
}

// Server serves one engine over TCP.  Create with New, start with Serve,
// stop with Shutdown.
type Server struct {
	db  *engine.DB
	kv  *kv.Store
	cfg Config
	adm *admission

	baseCtx    context.Context
	baseCancel context.CancelFunc

	gate     gate
	draining atomic.Bool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	connWG    sync.WaitGroup

	requests atomic.Int64
	statuses [8]atomic.Int64

	// ops holds one latency histogram per opcode (index = opcode byte).
	// All entries are nil without Config.Obs — obs histograms no-op on a
	// nil receiver, so the recording below needs no guard.
	ops [wire.OpAbort + 1]*obs.Histogram
}

// New wires a server to the database, attaching to (or initialising) its
// KV catalog.
func New(db *engine.DB, cfg Config) (*Server, error) {
	if cfg.Writers <= 0 {
		cfg.Writers = DefaultWriters
	}
	if cfg.Queue == 0 {
		cfg.Queue = 4 * cfg.Writers
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	store, err := kv.Open(ctx, db)
	if err != nil {
		cancel()
		return nil, err
	}
	s := &Server{
		db:         db,
		kv:         store,
		cfg:        cfg,
		adm:        newAdmission(cfg.Writers, cfg.Queue),
		baseCtx:    ctx,
		baseCancel: cancel,
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	s.registerMetrics(cfg.Obs)
	return s, nil
}

// registerMetrics wires the server's request tracing into reg: one
// latency histogram per opcode, gauges for the live queue state and
// counters for the admission controller's decisions.  A nil reg leaves
// every histogram nil, which disables recording entirely.
func (s *Server) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for op := byte(wire.OpPing); op <= wire.OpAbort; op++ {
		s.ops[op] = reg.Histogram(
			`face_server_op_seconds{op="` + strings.ToLower(wire.OpName(op)) + `"}`)
	}
	reg.GaugeFunc("face_server_inflight", func() int64 { return int64(s.gate.count()) })
	reg.GaugeFunc("face_server_queue_depth", func() int64 { return int64(len(s.adm.queue)) })
	reg.GaugeFunc("face_server_writers_busy", func() int64 { return int64(len(s.adm.tokens)) })
	reg.CounterFunc("face_server_requests_total", s.requests.Load)
	reg.CounterFunc("face_server_admitted_total", s.adm.admitted.Load)
	reg.CounterFunc("face_server_rejected_total", s.adm.rejected.Load)
	reg.CounterFunc("face_server_admission_waits_total", s.adm.waits.Load)
	reg.CounterFunc("face_server_busy_total", s.statuses[wire.StatusBusy].Load)
	reg.CounterFunc("face_server_timeout_total", s.statuses[wire.StatusTimeout].Load)
	reg.CounterFunc("face_server_errors_total", s.statuses[wire.StatusErr].Load)
}

// InFlight returns the number of requests (plus open batches) currently
// holding the drain gate.
func (s *Server) InFlight() int { return s.gate.count() }

// Store exposes the server's KV store (for preloading and tests).
func (s *Server) Store() *kv.Store { return s.kv }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on the listener until it closes (normally by
// Shutdown).  Several Serve calls may run on different listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: Serve after Shutdown")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

// Shutdown drains the server: stop accepting, let executing requests
// finish until the context ends, cancel whatever is left, close the
// connections and return once every connection goroutine exited.  The
// engine itself is not closed; the caller owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()

	var late error
	select {
	case <-s.gate.drained():
	case <-ctx.Done():
		// Past the drain deadline: cancel every in-flight request through
		// the shared base context and wait for the aborts to unwind.  Lock
		// waits and admission waits observe the cancel directly; commits
		// already past their context check finish their bounded log force.
		// Connections close too, so an abandoned batch (which holds the
		// gate open awaiting its COMMIT) releases its hold.
		late = ctx.Err()
		s.baseCancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-s.gate.drained()
	}
	s.baseCancel()

	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	st := s.Stats()
	s.logf("server: drained (%d requests: %d ok, %d busy, %d timeout, %d errors; admission: %d admitted, %d shed, %d waited; %d in flight at exit)",
		st.Requests, st.OK, st.Busy, st.Timeout, st.Errors,
		st.Admission.Admitted, st.Admission.Rejected, st.Admission.Waits, s.gate.count())
	if late != nil {
		return fmt.Errorf("server: drain deadline passed, in-flight requests were cancelled: %w", late)
	}
	return nil
}

// Stats returns the request counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		OK:        s.statuses[wire.StatusOK].Load(),
		NotFound:  s.statuses[wire.StatusNotFound].Load(),
		Busy:      s.statuses[wire.StatusBusy].Load(),
		Timeout:   s.statuses[wire.StatusTimeout].Load(),
		Closed:    s.statuses[wire.StatusClosed].Load(),
		Errors:    s.statuses[wire.StatusErr].Load(),
		Admission: s.adm.Stats(),
	}
}

// --- connection handling -------------------------------------------------

// connWriter is the response side of one connection; dead marks a failed
// socket so the writer goroutine keeps draining instead of blocking the
// reader.
type connWriter struct {
	w    *bufio.Writer
	dead bool
}

func newConnWriter(c net.Conn) *connWriter { return &connWriter{w: bufio.NewWriter(c)} }

func newConnReader(c net.Conn) *bufio.Reader { return bufio.NewReader(c) }

// batchVal is the buffered effect of one batch write on one key.
type batchVal struct {
	del bool
	val []byte
}

// connState is the per-connection request state (touched only by the
// connection's reader goroutine).
type connState struct {
	inBatch  bool
	batch    map[string]map[uint64]batchVal
	batchOps int
	// tr is the span trace of the request currently executing (nil
	// without Config.Tracer); dispatch's admission waits record into it.
	tr *trace.Trace
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	respCh := make(chan *wire.Response, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := newConnWriter(c)
		for resp := range respCh {
			if bw.dead {
				continue // drain so the reader never blocks
			}
			if err := wire.WriteResponse(bw.w, resp); err != nil {
				bw.dead = true
				c.Close()
				continue
			}
			// Flush when the pipeline is momentarily empty: responses to a
			// burst of pipelined requests share buffer flushes.
			if len(respCh) == 0 {
				if err := bw.w.Flush(); err != nil {
					bw.dead = true
					c.Close()
				}
			}
		}
		if !bw.dead {
			bw.w.Flush()
		}
	}()
	defer func() { close(respCh); <-writerDone }()

	cs := &connState{}
	// An open batch holds the drain gate (see execute); if the connection
	// dies mid-batch the hold must be released here.
	defer func() {
		if cs.inBatch {
			s.gate.leave()
		}
	}()
	br := newConnReader(c)
	for {
		req, err := wire.ReadRequest(br)
		if err != nil {
			return // client went away, or Shutdown closed the socket
		}
		respCh <- s.execute(cs, req)
	}
}

// execute runs one request and builds its response.
func (s *Server) execute(cs *connState, req *wire.Request) *wire.Response {
	s.requests.Add(1)
	// Start the request's trace before anything that can wait, adopting
	// the client's wire trace ID when the request carried one (minting a
	// server-side ID otherwise, so old clients still show up in the
	// journal).  tr stays nil without a tracer; every use below is
	// nil-safe.
	cs.tr = nil
	if t := s.cfg.Tracer; t != nil {
		cs.tr = t.Start(trace.ID(req.TraceID), strings.ToLower(wire.OpName(req.Op)))
	}
	tr := cs.tr
	if int(req.Op) < len(s.ops) && s.ops[req.Op] != nil {
		t0 := time.Now()
		// The trace ID rides the op's latency histogram as the exemplar
		// of whatever bucket this request lands in (a zero ID records a
		// plain observation).
		defer func() { s.ops[req.Op].ObserveExemplar(time.Since(t0), uint64(tr.ID())) }()
	}
	resp := &wire.Response{Seq: req.Seq}
	// A connection with an open batch is in-flight work: its requests may
	// still enter during a drain so the batch can reach its COMMIT.
	if !s.gate.enter(cs.inBatch) {
		resp.Status = wire.StatusClosed
		resp.Body = wire.MessageBody("server is draining")
		s.statuses[resp.Status].Add(1)
		s.finishTrace(tr, nil)
		return resp
	}
	defer s.gate.leave()

	ctx, cancel := s.requestCtx(req)
	defer cancel()
	// The engine attaches its commit-path phase spans (lock waits, WAL
	// appends, the durable force) to the request trace it finds here.
	ctx = engine.WithTrace(ctx, tr)

	wasBatch := cs.inBatch
	body, err := s.dispatch(ctx, cs, req)
	// Keep the gate's batch hold in sync: BEGIN takes an extra reference,
	// COMMIT/ABORT (or a commit error that drops the batch) releases it.
	if cs.inBatch && !wasBatch {
		s.gate.hold()
	} else if wasBatch && !cs.inBatch {
		s.gate.leave()
	}
	s.finishTrace(tr, err)
	resp.Status, resp.Body = s.finish(err, body)
	s.statuses[resp.Status].Add(1)
	return resp
}

// finishTrace seals a request's trace, first pinning the anomalies the
// journal's tail retention must keep: a deadlock victim carries its
// wait-for cycle and held pages, an admission shed the BUSY it returned.
func (s *Server) finishTrace(tr *trace.Trace, err error) {
	if tr == nil {
		return
	}
	if err != nil {
		var derr *lock.DeadlockError
		switch {
		case errors.As(err, &derr):
			tr.Pin(trace.PinDeadlock, fmt.Sprintf("cycle: %s; held: %v", derr.CycleString(), derr.Held))
		case errors.Is(err, ErrBusy):
			tr.Pin(trace.PinShed, err.Error())
		}
	}
	s.cfg.Tracer.Finish(tr)
}

// acquire is adm.Acquire with the wait recorded as a server_admission
// span on the request's trace.
func (s *Server) acquire(ctx context.Context, tr *trace.Trace) error {
	if tr == nil {
		return s.adm.Acquire(ctx)
	}
	t0 := time.Now()
	err := s.adm.Acquire(ctx)
	note := ""
	if err != nil {
		note = "refused"
	}
	tr.Span("server_admission", t0, time.Since(t0), 0, note)
	return err
}

// requestCtx derives the request's context: the server base context (so
// a drain deadline cancels everything at once) bounded by the smaller of
// the client deadline and the configured cap.
func (s *Server) requestCtx(req *wire.Request) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if timeout < 0 {
		timeout = 0
	}
	if d := time.Duration(req.DeadlineMS) * time.Millisecond; d > 0 && (timeout == 0 || d < timeout) {
		timeout = d
	}
	if timeout > 0 {
		return context.WithTimeout(s.baseCtx, timeout)
	}
	return context.WithCancel(s.baseCtx)
}

// errNotFound marks a missing key on the Get/Del path.
var errNotFound = errors.New("server: key not found")

// finish maps an error to the wire status and body.
func (s *Server) finish(err error, body []byte) (byte, []byte) {
	switch {
	case err == nil:
		return wire.StatusOK, body
	case errors.Is(err, errNotFound):
		return wire.StatusNotFound, nil
	case errors.Is(err, ErrBusy), errors.Is(err, engine.ErrDeadlock):
		return wire.StatusBusy, wire.MessageBody(err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return wire.StatusTimeout, wire.MessageBody(err.Error())
	case errors.Is(err, engine.ErrClosed), errors.Is(err, engine.ErrCrashed):
		return wire.StatusClosed, wire.MessageBody(err.Error())
	default:
		return wire.StatusErr, wire.MessageBody(err.Error())
	}
}

func (s *Server) dispatch(ctx context.Context, cs *connState, req *wire.Request) ([]byte, error) {
	switch req.Op {
	case wire.OpPing:
		return nil, nil
	case wire.OpCreate:
		if err := s.acquire(ctx, cs.tr); err != nil {
			return nil, err
		}
		defer s.adm.Release()
		_, err := s.kv.Create(ctx, req.NS)
		return nil, err
	case wire.OpGet:
		return s.doGet(ctx, cs, req)
	case wire.OpSet:
		return nil, s.doSet(ctx, cs, req)
	case wire.OpDel:
		return nil, s.doDel(ctx, cs, req)
	case wire.OpScan:
		return s.doScan(ctx, cs, req)
	case wire.OpBegin:
		if cs.inBatch {
			return nil, errors.New("server: BEGIN inside an open batch")
		}
		cs.inBatch = true
		cs.batch = make(map[string]map[uint64]batchVal)
		cs.batchOps = 0
		return nil, nil
	case wire.OpCommit:
		return nil, s.doCommit(ctx, cs)
	case wire.OpAbort:
		if !cs.inBatch {
			return nil, errors.New("server: ABORT without a batch")
		}
		cs.dropBatch()
		return nil, nil
	default:
		return nil, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
}

func (cs *connState) dropBatch() {
	cs.inBatch = false
	cs.batch = nil
	cs.batchOps = 0
}

// bufferWrite records a batch write, last write per key winning.
func (cs *connState) bufferWrite(ns string, key uint64, v batchVal) {
	m := cs.batch[ns]
	if m == nil {
		m = make(map[uint64]batchVal)
		cs.batch[ns] = m
	}
	m[key] = v
	cs.batchOps++
}

func (s *Server) doGet(ctx context.Context, cs *connState, req *wire.Request) ([]byte, error) {
	if cs.inBatch {
		if v, ok := cs.batch[req.NS][req.Key]; ok {
			if v.del {
				return nil, errNotFound
			}
			return wire.ValueBody(v.val), nil
		}
	}
	ns, err := s.kv.Namespace(req.NS)
	if err != nil {
		return nil, err
	}
	var body []byte
	err = s.db.View(ctx, func(tx *engine.Tx) error {
		val, found, err := ns.Get(tx, req.Key)
		if err != nil {
			return err
		}
		if !found {
			return errNotFound
		}
		body = wire.ValueBody(val)
		return nil
	})
	return body, err
}

func (s *Server) doSet(ctx context.Context, cs *connState, req *wire.Request) error {
	if len(req.Value) > kv.MaxValueSize {
		return fmt.Errorf("%w: %d bytes (max %d)", kv.ErrTooLarge, len(req.Value), kv.MaxValueSize)
	}
	if cs.inBatch {
		if _, err := s.kv.Namespace(req.NS); err != nil {
			return err
		}
		cs.bufferWrite(req.NS, req.Key, batchVal{val: append([]byte(nil), req.Value...)})
		return nil
	}
	ns, err := s.kv.Namespace(req.NS)
	if err != nil {
		return err
	}
	if err := s.acquire(ctx, cs.tr); err != nil {
		return err
	}
	defer s.adm.Release()
	p := kv.NewPending()
	if err := s.db.Update(ctx, func(tx *engine.Tx) error {
		return ns.Set(tx, p, req.Key, req.Value)
	}); err != nil {
		return err
	}
	p.Apply()
	return nil
}

func (s *Server) doDel(ctx context.Context, cs *connState, req *wire.Request) error {
	if cs.inBatch {
		if _, err := s.kv.Namespace(req.NS); err != nil {
			return err
		}
		cs.bufferWrite(req.NS, req.Key, batchVal{del: true})
		return nil
	}
	ns, err := s.kv.Namespace(req.NS)
	if err != nil {
		return err
	}
	if err := s.acquire(ctx, cs.tr); err != nil {
		return err
	}
	defer s.adm.Release()
	var existed bool
	if err := s.db.Update(ctx, func(tx *engine.Tx) error {
		var err error
		existed, err = ns.Delete(tx, req.Key)
		return err
	}); err != nil {
		return err
	}
	if !existed {
		return errNotFound
	}
	return nil
}

func (s *Server) doScan(ctx context.Context, cs *connState, req *wire.Request) ([]byte, error) {
	ns, err := s.kv.Namespace(req.NS)
	if err != nil {
		return nil, err
	}
	limit := int(req.Limit)
	scanLimit := limit
	var overlay map[uint64]batchVal
	if cs.inBatch {
		overlay = cs.batch[req.NS]
		if limit > 0 {
			// Buffered deletions may knock committed keys out of the
			// result: scan far enough past the limit to replace them.
			scanLimit = limit + len(overlay)
		}
	}
	var pairs []wire.KV
	err = s.db.View(ctx, func(tx *engine.Tx) error {
		pairs = pairs[:0]
		return ns.Scan(tx, req.Lo, req.Hi, scanLimit, func(key uint64, val []byte) error {
			pairs = append(pairs, wire.KV{Key: key, Value: append([]byte(nil), val...)})
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	if len(overlay) > 0 {
		pairs = mergeOverlay(pairs, overlay, req.Lo, req.Hi)
	}
	if limit > 0 && len(pairs) > limit {
		pairs = pairs[:limit]
	}
	return wire.PairsBody(pairs), nil
}

// mergeOverlay applies a batch's buffered writes over a committed scan
// result, keeping key order.
func mergeOverlay(pairs []wire.KV, overlay map[uint64]batchVal, lo, hi uint64) []wire.KV {
	out := pairs[:0]
	for _, p := range pairs {
		if v, ok := overlay[p.Key]; ok {
			if v.del {
				continue
			}
			p.Value = v.val
		}
		out = append(out, p)
	}
	seen := make(map[uint64]bool, len(out))
	for _, p := range out {
		seen[p.Key] = true
	}
	added := false
	for key, v := range overlay {
		if v.del || key < lo || key > hi || seen[key] {
			continue
		}
		out = append(out, wire.KV{Key: key, Value: v.val})
		added = true
	}
	if added {
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	return out
}

func (s *Server) doCommit(ctx context.Context, cs *connState) error {
	if !cs.inBatch {
		return errors.New("server: COMMIT without a batch")
	}
	if cs.batchOps == 0 {
		cs.dropBatch()
		return nil
	}
	// Resolve namespaces and order the work deterministically so
	// concurrent batches acquire page locks in a stable order.
	names := make([]string, 0, len(cs.batch))
	for name := range cs.batch {
		names = append(names, name)
	}
	sort.Strings(names)
	spaces := make([]*kv.Namespace, len(names))
	for i, name := range names {
		ns, err := s.kv.Namespace(name)
		if err != nil {
			cs.dropBatch()
			return err
		}
		spaces[i] = ns
	}
	if err := s.acquire(ctx, cs.tr); err != nil {
		return err
	}
	defer s.adm.Release()
	p := kv.NewPending()
	err := s.db.Update(ctx, func(tx *engine.Tx) error {
		for i, name := range names {
			m := cs.batch[name]
			keys := make([]uint64, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				v := m[k]
				if v.del {
					if _, err := spaces[i].Delete(tx, k); err != nil {
						return err
					}
					continue
				}
				if err := spaces[i].Set(tx, p, k, v.val); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		// BUSY and TIMEOUT keep the batch buffered so the client can
		// retry COMMIT; anything else drops it.
		status, _ := s.finish(err, nil)
		if status != wire.StatusBusy && status != wire.StatusTimeout {
			cs.dropBatch()
		}
		return err
	}
	p.Apply()
	cs.dropBatch()
	return nil
}

// --- drain gate ----------------------------------------------------------

// gate counts in-flight work — executing requests plus open batches —
// and refuses new entries once closed; it replaces a sync.WaitGroup
// because Add-after-Wait races are exactly the drain scenario.
type gate struct {
	mu     sync.Mutex
	n      int
	closed bool
	idle   chan struct{}
}

// enter admits one request; false means the gate is closed.  held is
// true when the caller already owns a live reference (an open batch):
// its requests keep flowing during a drain so the batch can finish.
func (g *gate) enter(held bool) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed && !held {
		return false
	}
	g.n++
	return true
}

// count reports the gate's live reference count (in-flight requests plus
// open batches), for the in-flight gauge and the shutdown log line.
func (g *gate) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// hold takes an extra reference; the caller must already be inside the
// gate (so the count cannot have reached zero).
func (g *gate) hold() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// leave retires one request.
func (g *gate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.closed && g.n == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

// drained closes the gate and returns a channel that closes once the
// last admitted request leaves (immediately when none are in flight).
func (g *gate) drained() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	ch := make(chan struct{})
	if g.n == 0 {
		close(ch)
		return ch
	}
	if g.idle == nil {
		g.idle = ch
		return ch
	}
	return g.idle
}
