package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/engine"
	"github.com/reprolab/face/internal/server/client"
	"github.com/reprolab/face/internal/server/wire"
)

// testServer is a server running over a file-backed database in a temp
// directory — the same WithDir stack faced serves in production.
type testServer struct {
	srv  *Server
	db   *engine.DB
	dir  string
	addr string
}

func startServer(t *testing.T, cfg Config, writers int) *testServer {
	t.Helper()
	dir := t.TempDir()
	db := openDir(t, dir, writers)
	srv, err := New(db, cfg)
	if err != nil {
		db.Close()
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	ts := &testServer{srv: srv, db: db, dir: dir, addr: ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts.srv.Shutdown(ctx)
		ts.db.Close()
	})
	return ts
}

func openDir(t *testing.T, dir string, writers int) *engine.DB {
	t.Helper()
	cfg := engine.Config{
		Dir:         dir,
		BufferPages: 512,
		Policy:      engine.PolicyNone,
		PageLocks:   true,
		NoFsync:     true,
	}
	if writers > 0 {
		cfg.MaxWriters = writers
	}
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatalf("engine.Open(%s): %v", dir, err)
	}
	return db
}

func dial(t *testing.T, ts *testServer, conns int) *client.Client {
	t.Helper()
	c, err := client.Dial(ts.addr, client.Options{Conns: conns})
	if err != nil {
		t.Fatalf("client.Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerRoundTrip(t *testing.T) {
	ts := startServer(t, Config{}, 4)
	c := dial(t, ts, 2)

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Create("users"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Create("users"); err != nil {
		t.Fatalf("second Create: %v", err)
	}
	if err := c.Set("users", 42, []byte("hello")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	val, found, err := c.Get("users", 42)
	if err != nil || !found || string(val) != "hello" {
		t.Fatalf("Get = %q, %v, %v", val, found, err)
	}
	if _, found, err = c.Get("users", 43); err != nil || found {
		t.Fatalf("Get(43) = found=%v err=%v, want miss", found, err)
	}
	if _, _, err := c.Get("nope", 1); err == nil {
		t.Fatal("Get on unknown namespace succeeded")
	}
	for k := uint64(10); k < 20; k++ {
		if err := c.Set("users", k, []byte{byte(k)}); err != nil {
			t.Fatalf("Set(%d): %v", k, err)
		}
	}
	pairs, err := c.Scan("users", 12, 16, 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(pairs) != 5 || pairs[0].Key != 12 || pairs[4].Key != 16 {
		t.Fatalf("Scan = %v", pairs)
	}
	pairs, err = c.Scan("users", 0, ^uint64(0), 3)
	if err != nil || len(pairs) != 3 {
		t.Fatalf("limited Scan = %d pairs, %v", len(pairs), err)
	}
	existed, err := c.Del("users", 42)
	if err != nil || !existed {
		t.Fatalf("Del = %v, %v", existed, err)
	}
	existed, err = c.Del("users", 42)
	if err != nil || existed {
		t.Fatalf("second Del = %v, %v", existed, err)
	}
}

// TestServerPipelining drives the raw protocol: many requests written
// before any response is read, responses returned in request order.
func TestServerPipelining(t *testing.T) {
	ts := startServer(t, Config{}, 4)
	c := dial(t, ts, 1)
	if err := c.Create("p"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	const n = 100
	for i := 0; i < n; i++ {
		req := &wire.Request{Op: wire.OpSet, Seq: uint32(i + 1), NS: "p", Key: uint64(i), Value: []byte{byte(i)}}
		if err := wire.WriteRequest(bw, req); err != nil {
			t.Fatalf("WriteRequest(%d): %v", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	for i := 0; i < n; i++ {
		resp, err := wire.ReadResponse(br)
		if err != nil {
			t.Fatalf("ReadResponse(%d): %v", i, err)
		}
		if resp.Seq != uint32(i+1) {
			t.Fatalf("response %d carries seq %d: pipelined responses must stay in request order", i, resp.Seq)
		}
		if resp.Status != wire.StatusOK && resp.Status != wire.StatusBusy {
			t.Fatalf("response %d: %s: %s", i, wire.StatusName(resp.Status), wire.DecodeMessage(resp.Body))
		}
	}
}

// TestServer64Connections is the acceptance criterion: at least 64
// concurrent client connections served against a file-backed database.
func TestServer64Connections(t *testing.T) {
	ts := startServer(t, Config{Writers: 8}, 8)
	c := dial(t, ts, 64)
	if err := c.Create("c64"); err != nil {
		t.Fatal(err)
	}

	const workers = 64
	const opsPer = 30
	var wg sync.WaitGroup
	var busy, ok atomic.Int64
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := uint64(w*opsPer + i)
				err := c.Set("c64", key, []byte(fmt.Sprintf("w%d-%d", w, i)))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, client.ErrBusy):
					busy.Add(1)
					i-- // retry after backoff: BUSY is the retryable contract
					time.Sleep(time.Millisecond)
				default:
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := ok.Load(); got != workers*opsPer {
		t.Fatalf("committed %d of %d writes", got, workers*opsPer)
	}
	// Every write must read back.
	for w := 0; w < workers; w++ {
		key := uint64(w * opsPer)
		val, found, err := c.Get("c64", key)
		if err != nil || !found {
			t.Fatalf("Get(%d) = found=%v err=%v", key, found, err)
		}
		if want := fmt.Sprintf("w%d-0", w); string(val) != want {
			t.Fatalf("Get(%d) = %q, want %q", key, val, want)
		}
	}
	t.Logf("64-connection run: %d ok, %d busy-retries", ok.Load(), busy.Load())
}

func TestServerBatchSemantics(t *testing.T) {
	ts := startServer(t, Config{}, 4)
	c := dial(t, ts, 2)
	if err := c.Create("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", 1, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", 2, []byte("doomed")); err != nil {
		t.Fatal(err)
	}

	txn, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := txn.Set("b", 3, []byte("batched")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Del("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := txn.Set("b", 1, []byte("overwritten")); err != nil {
		t.Fatal(err)
	}

	// The batch's own reads see the overlay...
	val, found, err := txn.Get("b", 3)
	if err != nil || !found || string(val) != "batched" {
		t.Fatalf("txn Get(3) = %q, %v, %v", val, found, err)
	}
	if _, found, _ := txn.Get("b", 2); found {
		t.Fatal("txn Get(2) sees a key the batch deleted")
	}
	// ...including merged scans...
	pairs, err := txn.Scan("b", 0, 10, 0)
	if err != nil {
		t.Fatalf("txn Scan: %v", err)
	}
	if len(pairs) != 2 || pairs[0].Key != 1 || string(pairs[0].Value) != "overwritten" || pairs[1].Key != 3 {
		t.Fatalf("txn Scan = %v", pairs)
	}
	// ...while other connections still see the committed state.
	val, found, err = c.Get("b", 1)
	if err != nil || !found || string(val) != "committed" {
		t.Fatalf("outside Get(1) during batch = %q, %v, %v", val, found, err)
	}
	if _, found, _ = c.Get("b", 3); found {
		t.Fatal("outside Get(3) sees an uncommitted batch write")
	}

	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	val, found, err = c.Get("b", 1)
	if err != nil || !found || string(val) != "overwritten" {
		t.Fatalf("Get(1) after commit = %q, %v, %v", val, found, err)
	}
	if _, found, _ = c.Get("b", 2); found {
		t.Fatal("Get(2) after commit: batched delete lost")
	}

	// An aborted batch changes nothing.
	txn2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.Set("b", 9, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if _, found, _ = c.Get("b", 9); found {
		t.Fatal("Get(9) sees an aborted batch write")
	}
}

// TestServerScanValuesSurviveLargeResults checks value integrity through
// the scan encoding on a multi-page namespace.
func TestServerScanValuesSurviveLargeResults(t *testing.T) {
	ts := startServer(t, Config{}, 4)
	c := dial(t, ts, 1)
	if err := c.Create("wide"); err != nil {
		t.Fatal(err)
	}
	want := make(map[uint64][]byte)
	for k := uint64(0); k < 64; k++ {
		val := bytes.Repeat([]byte{byte(k + 1)}, 200)
		want[k] = val
		if err := c.Set("wide", k, val); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := c.Scan("wide", 0, ^uint64(0), 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(pairs) != len(want) {
		t.Fatalf("Scan returned %d pairs, want %d", len(pairs), len(want))
	}
	for _, p := range pairs {
		if !bytes.Equal(p.Value, want[p.Key]) {
			t.Fatalf("key %d: value mismatch", p.Key)
		}
	}
}

// TestAdmissionRejectsUnderOverload saturates a Writers=1, Queue-less
// server deterministically: a transaction parked inside the engine holds
// the single writer slot, so the first network write takes the admission
// token and blocks behind it, and every further write must be shed with
// BUSY — a clean, retryable no-op — instead of queueing without bound.
func TestAdmissionRejectsUnderOverload(t *testing.T) {
	ts := startServer(t, Config{Writers: 1, Queue: -1}, 1)
	c := dial(t, ts, 4)
	if err := c.Create("flood"); err != nil {
		t.Fatal(err)
	}

	// Park a direct engine transaction: it holds the engine's only
	// writer slot until released.
	release := make(chan struct{})
	parked := make(chan struct{})
	updDone := make(chan error, 1)
	go func() {
		updDone <- ts.db.Update(context.Background(), func(tx *engine.Tx) error {
			close(parked)
			<-release
			return nil
		})
	}()
	<-parked

	// The first network write takes the admission token and blocks on the
	// engine's writer semaphore.
	setDone := make(chan error, 1)
	go func() { setDone <- c.Set("flood", 1, []byte("first")) }()

	// Once the token is taken, further writes are shed immediately.
	deadline := time.Now().Add(5 * time.Second)
	var sawBusy bool
	for time.Now().Before(deadline) {
		err := c.Set("flood", 2, []byte("second"))
		if errors.Is(err, client.ErrBusy) {
			sawBusy = true
			break
		}
		if err != nil {
			t.Fatalf("Set = %v, want nil or ErrBusy", err)
		}
		time.Sleep(time.Millisecond)
	}
	if !sawBusy {
		t.Fatal("no BUSY while the writer slot was held: admission is not shedding")
	}

	// Release the parked writer: the blocked Set completes and the server
	// serves normally again.
	close(release)
	if err := <-updDone; err != nil {
		t.Fatalf("parked Update: %v", err)
	}
	if err := <-setDone; err != nil {
		t.Fatalf("blocked Set: %v", err)
	}
	if err := c.Set("flood", 3, []byte("after")); err != nil {
		t.Fatalf("Set after overload: %v", err)
	}
	val, found, err := c.Get("flood", 1)
	if err != nil || !found || string(val) != "first" {
		t.Fatalf("Get(1) = %q, %v, %v", val, found, err)
	}
	st := ts.srv.Stats()
	if st.Admission.Rejected == 0 {
		t.Fatalf("admission stats recorded no rejects: %+v", st.Admission)
	}
	if st.Busy == 0 {
		t.Fatalf("server stats recorded no BUSY responses: %+v", st)
	}
}

// TestAdmissionQueueWaits checks the bounded-queue middle ground: with a
// queue, brief contention waits instead of rejecting.
func TestAdmissionQueueWaits(t *testing.T) {
	a := newAdmission(1, 2)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two waiters fit the queue.
	done := make(chan error, 3)
	for i := 0; i < 2; i++ {
		go func() { done <- a.Acquire(context.Background()) }()
	}
	// Give both time to enqueue, then a third must be shed immediately.
	time.Sleep(50 * time.Millisecond)
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Fatalf("third waiter = %v, want ErrBusy", err)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("second waiter: %v", err)
	}
	a.Release()

	// A cancelled waiter leaves the queue promptly.
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- a.Acquire(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	a.Release()
	st := a.Stats()
	if st.Rejected == 0 || st.Waits == 0 {
		t.Fatalf("stats = %+v, want rejects and waits recorded", st)
	}
}
