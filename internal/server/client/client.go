// Package client is the Go client for faced's wire protocol.
//
// A Client multiplexes requests over a small pool of TCP connections:
// each connection has one reader goroutine dispatching responses to
// waiting callers by sequence number, so any number of goroutines can
// issue requests concurrently and the server sees them pipelined.
//
// Transactional batches (Begin/Set/Del/Commit) are per-connection state
// on the server, so a Txn runs on a dedicated connection of its own.
//
// BUSY responses surface as ErrBusy: the server shed the request under
// overload or the transaction lost a deadlock.  Both are retryable after
// a backoff; the load generator counts them instead of retrying so
// overload stays visible.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reprolab/face/internal/server/wire"
)

// Errors mapped from response statuses.
var (
	// ErrBusy is a retryable refusal (admission shed or deadlock victim).
	ErrBusy = errors.New("client: server busy")
	// ErrTimeout is a request whose deadline expired server-side.
	ErrTimeout = errors.New("client: request timed out")
	// ErrClosed is a request refused because the server is draining.
	ErrClosed = errors.New("client: server closed")
	// ErrConnClosed is a request that died with its connection.
	ErrConnClosed = errors.New("client: connection closed")
)

// Options tunes a Client.
type Options struct {
	// Conns is the connection pool size (default 1).
	Conns int
	// DialTimeout bounds each dial (default 5s).  Dials are retried
	// until the timeout so a client may start before its server.
	DialTimeout time.Duration
	// RequestTimeout, when positive, is sent as the per-request deadline.
	RequestTimeout time.Duration
	// Trace stamps every request with a freshly minted trace ID in the
	// wire frame's trailing extension.  Traced requests join the server's
	// span journal under the client's ID, so a slow or shed request seen
	// client-side can be looked up in faced's /debug/traces.  Servers
	// predating the extension ignore it.
	Trace bool
}

// Client is a pooled, multiplexing connection to one server.
type Client struct {
	addr  string
	opts  Options
	conns []*Conn
	next  atomic.Uint64
}

// Dial connects the pool.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: opts}
	for i := 0; i < opts.Conns; i++ {
		conn, err := dialConn(addr, opts)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, conn)
	}
	return c, nil
}

// dialConn dials with retry until the timeout: servers and load
// generators start concurrently in scripts and CI.
func dialConn(addr string, opts Options) (*Conn, error) {
	deadline := time.Now().Add(opts.DialTimeout)
	for {
		nc, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return newConn(nc, opts), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close closes every pooled connection.
func (c *Client) Close() error {
	var err error
	for _, conn := range c.conns {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (c *Client) pick() *Conn {
	return c.conns[c.next.Add(1)%uint64(len(c.conns))]
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.pick().roundTrip(&wire.Request{Op: wire.OpPing})
	return err
}

// Create ensures the namespace exists.
func (c *Client) Create(ns string) error {
	_, err := c.pick().roundTrip(&wire.Request{Op: wire.OpCreate, NS: ns})
	return err
}

// Get reads a key; the boolean reports whether it exists.
func (c *Client) Get(ns string, key uint64) ([]byte, bool, error) {
	resp, err := c.pick().roundTrip(&wire.Request{Op: wire.OpGet, NS: ns, Key: key})
	return decodeGet(resp, err)
}

func decodeGet(resp *wire.Response, err error) ([]byte, bool, error) {
	if err != nil {
		return nil, false, err
	}
	if resp.Status == wire.StatusNotFound {
		return nil, false, nil
	}
	val, err := wire.DecodeValue(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Set writes a key.
func (c *Client) Set(ns string, key uint64, val []byte) error {
	_, err := c.pick().roundTrip(&wire.Request{Op: wire.OpSet, NS: ns, Key: key, Value: val})
	return err
}

// Del deletes a key; the boolean reports whether it existed.
func (c *Client) Del(ns string, key uint64) (bool, error) {
	resp, err := c.pick().roundTrip(&wire.Request{Op: wire.OpDel, NS: ns, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status != wire.StatusNotFound, nil
}

// Scan returns the pairs with lo <= key <= hi in key order, at most
// limit of them (0 = unlimited, bounded by the frame size).
func (c *Client) Scan(ns string, lo, hi uint64, limit int) ([]wire.KV, error) {
	resp, err := c.pick().roundTrip(&wire.Request{
		Op: wire.OpScan, NS: ns, Lo: lo, Hi: hi, Limit: uint32(limit),
	})
	if err != nil {
		return nil, err
	}
	return wire.DecodePairs(resp.Body)
}

// --- transactions --------------------------------------------------------

// Txn is a server-side batch: writes are buffered on the server, reads
// see the buffer merged over a committed snapshot, and Commit applies
// everything as one engine transaction.  A Txn owns a dedicated
// connection while open; Commit or Abort must be called exactly once.
type Txn struct {
	conn *Conn
	done bool
}

// Begin opens a batch on a dedicated connection: batch state lives on
// the server per connection, so sharing a pooled connection would sweep
// concurrent plain requests into the batch.  The connection is released
// when the Txn finishes.
func (c *Client) Begin() (*Txn, error) {
	conn, err := dialConn(c.addr, c.opts)
	if err != nil {
		return nil, err
	}
	if _, err := conn.roundTrip(&wire.Request{Op: wire.OpBegin}); err != nil {
		conn.Close()
		return nil, err
	}
	return &Txn{conn: conn}, nil
}

func (t *Txn) check() error {
	if t.done {
		return errors.New("client: transaction already finished")
	}
	return nil
}

// Get reads through the batch overlay.
func (t *Txn) Get(ns string, key uint64) ([]byte, bool, error) {
	if err := t.check(); err != nil {
		return nil, false, err
	}
	resp, err := t.conn.roundTrip(&wire.Request{Op: wire.OpGet, NS: ns, Key: key})
	return decodeGet(resp, err)
}

// Set buffers a write.
func (t *Txn) Set(ns string, key uint64, val []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	_, err := t.conn.roundTrip(&wire.Request{Op: wire.OpSet, NS: ns, Key: key, Value: val})
	return err
}

// Scan reads a range through the batch overlay.
func (t *Txn) Scan(ns string, lo, hi uint64, limit int) ([]wire.KV, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	resp, err := t.conn.roundTrip(&wire.Request{
		Op: wire.OpScan, NS: ns, Lo: lo, Hi: hi, Limit: uint32(limit),
	})
	if err != nil {
		return nil, err
	}
	return wire.DecodePairs(resp.Body)
}

// Del buffers a deletion.
func (t *Txn) Del(ns string, key uint64) error {
	if err := t.check(); err != nil {
		return err
	}
	_, err := t.conn.roundTrip(&wire.Request{Op: wire.OpDel, NS: ns, Key: key})
	return err
}

// Commit applies the batch as one transaction.  On ErrBusy or ErrTimeout
// the batch stays buffered server-side and Commit may be retried.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	_, err := t.conn.roundTrip(&wire.Request{Op: wire.OpCommit})
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrTimeout) {
		return err // retryable: the batch is still open
	}
	t.done = true
	t.conn.Close()
	return err
}

// Abort drops the batch.
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	_, err := t.conn.roundTrip(&wire.Request{Op: wire.OpAbort})
	t.conn.Close()
	return err
}

// --- one multiplexed connection ------------------------------------------

// Conn is one wire connection.  Concurrent roundTrip calls interleave:
// the write side is serialized by a mutex, responses are matched to
// callers by sequence number.
type Conn struct {
	opts Options
	nc   net.Conn

	mu      sync.Mutex // guards bw, seq, pending, err
	bw      *bufio.Writer
	seq     uint32
	pending map[uint32]chan *wire.Response
	err     error
}

func newConn(nc net.Conn, opts Options) *Conn {
	c := &Conn{opts: opts, nc: nc, bw: bufio.NewWriter(nc), pending: make(map[uint32]chan *wire.Response)}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight requests fail with
// ErrConnClosed.
func (c *Conn) Close() error {
	c.fail(ErrConnClosed)
	return nil
}

// fail marks the connection dead and wakes every waiter.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		c.nc.Close()
	}
	for seq, ch := range c.pending {
		close(ch)
		delete(c.pending, seq)
	}
	c.mu.Unlock()
}

func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		resp, err := wire.ReadResponse(br)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// traceSeq feeds mintTraceID; the wall clock seeds the sequence so IDs
// from different client processes don't collide.
var traceSeq atomic.Uint64

func init() { traceSeq.Store(uint64(time.Now().UnixNano())) }

// mintTraceID returns a new nonzero trace ID: a time-seeded counter
// pushed through a splitmix64-style finalizer so IDs look random and
// spread across the ID space.
func mintTraceID() uint64 {
	for {
		z := traceSeq.Add(1) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// roundTrip sends one request and waits for its response, mapping non-OK
// statuses to errors (except NOT_FOUND, which the typed wrappers
// interpret).
func (c *Conn) roundTrip(req *wire.Request) (*wire.Response, error) {
	if d := c.opts.RequestTimeout; d > 0 {
		req.DeadlineMS = uint32(d.Milliseconds())
	}
	if c.opts.Trace {
		req.Flags |= wire.FlagTrace
		req.TraceID = mintTraceID()
	}
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	req.Seq = c.seq
	c.pending[req.Seq] = ch
	err := wire.WriteRequest(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		delete(c.pending, req.Seq)
		c.mu.Unlock()
		c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
		return nil, err
	}
	c.mu.Unlock()

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	switch resp.Status {
	case wire.StatusOK, wire.StatusNotFound:
		return resp, nil
	case wire.StatusBusy:
		return nil, fmt.Errorf("%w: %s", ErrBusy, wire.DecodeMessage(resp.Body))
	case wire.StatusTimeout:
		return nil, fmt.Errorf("%w: %s", ErrTimeout, wire.DecodeMessage(resp.Body))
	case wire.StatusClosed:
		return nil, fmt.Errorf("%w: %s", ErrClosed, wire.DecodeMessage(resp.Body))
	default:
		return nil, fmt.Errorf("client: %s: %s", wire.StatusName(resp.Status), wire.DecodeMessage(resp.Body))
	}
}
