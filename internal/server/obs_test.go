package server

import (
	"strings"
	"testing"

	"github.com/reprolab/face/internal/obs"
)

// TestMetricsServerOps checks the server-side request tracing: per-op
// latency histograms, live gauges and admission counters all land on the
// shared registry, the same wiring faced serves at /metrics.
func TestMetricsServerOps(t *testing.T) {
	reg := obs.NewRegistry()
	ts := startServer(t, Config{Writers: 2, Obs: reg}, 2)
	c := dial(t, ts, 1)

	if err := c.Create("m"); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := c.Set("m", i, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		if _, found, err := c.Get("m", i); err != nil || !found {
			t.Fatalf("Get(%d) = found=%v, err=%v", i, found, err)
		}
	}
	if _, found, err := c.Get("m", 999); err != nil || found {
		t.Fatalf("Get(999) = found=%v, err=%v, want miss", found, err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`face_server_op_seconds_count{op="set"} 10`,
		`face_server_op_seconds_count{op="get"} 11`,
		`face_server_op_seconds_count{op="create"} 1`,
		`face_server_op_seconds{op="set",quantile="0.99"} `,
		"face_server_requests_total 22",
		"face_server_rejected_total 0",
		"# TYPE face_server_inflight gauge",
		"# TYPE face_server_queue_depth gauge",
		"face_server_writers_busy 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered metrics:\n%s", want, out)
		}
	}
	if got := ts.srv.InFlight(); got != 0 {
		t.Errorf("InFlight() = %d at idle, want 0", got)
	}
}

// TestMetricsServerDisabled checks that a server without a registry
// records nothing and still serves.
func TestMetricsServerDisabled(t *testing.T) {
	ts := startServer(t, Config{Writers: 2}, 2)
	c := dial(t, ts, 1)
	if err := c.Create("m"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("m", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, h := range ts.srv.ops {
		if h != nil {
			t.Fatal("op histogram allocated without Config.Obs")
		}
	}
}
