package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBusy is the admission controller's refusal: every writer token is
// taken and the wait queue is full.  The server maps it to StatusBusy —
// a retryable signal — instead of letting latency grow without bound.
var ErrBusy = errors.New("server: admission queue full")

// admission generalizes the engine's WithMaxWriters semaphore to the
// network edge.  Writers tokens bound the write transactions in flight
// (matching the engine's MaxWriters, which doubles as the group-commit
// fan-in hint); queue slots bound how many more requests may wait for a
// token.  A request arriving beyond both bounds is shed immediately with
// ErrBusy: under overload the server degrades into explicit, retryable
// rejections rather than an unbounded queue of ever-slower requests.
type admission struct {
	tokens chan struct{}
	queue  chan struct{}

	admitted atomic.Int64
	rejected atomic.Int64
	waits    atomic.Int64
}

// newAdmission builds a controller with the given writer and queue
// bounds (both at least 1; queue 0 disables waiting entirely).
func newAdmission(writers, queue int) *admission {
	a := &admission{tokens: make(chan struct{}, writers)}
	if queue > 0 {
		a.queue = make(chan struct{}, queue)
	}
	return a
}

// Acquire takes a writer token, waiting in the bounded queue if needed.
// It returns ErrBusy when both are full and the context's error when it
// ends first.  A nil error must be paired with Release.
func (a *admission) Acquire(ctx context.Context) error {
	select {
	case a.tokens <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	if a.queue == nil {
		a.rejected.Add(1)
		return ErrBusy
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Add(1)
		return ErrBusy
	}
	a.waits.Add(1)
	defer func() { <-a.queue }()
	select {
	case a.tokens <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a writer token.
func (a *admission) Release() { <-a.tokens }

// AdmissionStats is a snapshot of the controller's counters.
type AdmissionStats struct {
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Waits    int64 `json:"waits"`
}

func (a *admission) Stats() AdmissionStats {
	return AdmissionStats{
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
		Waits:    a.waits.Load(),
	}
}
