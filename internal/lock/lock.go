// Package lock implements a page-granularity lock manager with shared and
// exclusive modes, S→X upgrades, context-aware blocking waits, and
// deadlock detection over a wait-for graph.
//
// It is the concurrency substrate of the engine's multi-writer transaction
// scheduler: Update transactions acquire locks on first touch (shared for
// reads, exclusive for writes) and hold them to commit or abort — strict
// two-phase locking, so the schedule is serializable and aborts never
// cascade.  A request that would close a cycle in the wait-for graph is
// refused immediately with ErrDeadlock; the transaction is expected to
// roll back, release everything it holds, and retry.
//
// Grant policy is FIFO: a new request is granted only when it is
// compatible with the current holders and no earlier request is queued, so
// writers are not starved by a stream of readers.  The one exception is
// upgrades: a holder converting S→X enters the queue ahead of plain
// requests (it already blocks everyone behind it anyway), and two holders
// upgrading the same page deadlock by construction — one of them is
// refused rather than both waiting forever.
package lock

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"github.com/reprolab/face/internal/metrics"
	"github.com/reprolab/face/internal/page"
)

// ErrDeadlock is returned by Acquire when granting the request could never
// happen because the requester is part of a wait cycle.  The caller should
// abort the transaction (releasing its locks breaks the cycle) and retry.
// The concrete error is a *DeadlockError carrying the detected cycle;
// match with errors.Is(err, ErrDeadlock) as always, and errors.As to read
// the forensics.
var ErrDeadlock = errors.New("lock: deadlock detected")

// WaitEdge is one edge of a wait-for cycle: Tx is blocked waiting on Page.
type WaitEdge struct {
	Tx   uint64  `json:"tx"`
	Page page.ID `json:"page"`
}

// DeadlockError is the structured form of a refused Acquire: the victim,
// the request that closed the cycle, the wait-for cycle itself, and the
// pages the victim held at refusal time.  It unwraps to ErrDeadlock, so
// existing errors.Is checks keep working.
type DeadlockError struct {
	// Tx is the victim (the requester that was refused).
	Tx uint64
	// Page and Mode are the request that would have closed the cycle.
	Page page.ID
	Mode Mode
	// Cycle is the wait-for cycle, starting at the victim: each edge's
	// transaction is blocked on its page, which a holder ahead in the
	// cycle will not release.
	Cycle []WaitEdge
	// Held is the victim's held-page set at refusal time (sorted), the
	// locks whose release will break the cycle when it aborts.
	Held []page.ID
}

// Error keeps the historical message shape and appends the cycle.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("tx %d waiting for %s on page %d: %v (cycle: %s)",
		e.Tx, e.Mode, e.Page, ErrDeadlock, e.CycleString())
}

// Unwrap makes errors.Is(err, ErrDeadlock) hold.
func (e *DeadlockError) Unwrap() error { return ErrDeadlock }

// CycleString renders the cycle compactly: "tx 5→page 3, tx 7→page 4"
// means tx 5 waits on page 3 (held along the cycle by tx 7), and so on
// back around to the first transaction.
func (e *DeadlockError) CycleString() string {
	var b []byte
	for i, edge := range e.Cycle {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = fmt.Appendf(b, "tx %d→page %d", edge.Tx, edge.Page)
	}
	return string(b)
}

// Mode is a lock mode.
type Mode uint8

// Lock modes, in increasing strength.
const (
	// Shared is held by readers; any number of transactions share it.
	Shared Mode = iota
	// Exclusive is held by writers; it is incompatible with everything.
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// compatible reports whether a request of mode b can share the page with a
// holder of mode a.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// waiter is one blocked Acquire call.
type waiter struct {
	tx      uint64
	mode    Mode
	upgrade bool
	// granted is set (under Manager.mu) before ready is closed; the
	// context-cancellation path checks it to learn whether the lock was
	// handed over concurrently with the cancellation.
	granted bool
	ready   chan struct{}
}

// entry is the lock state of one page.
type entry struct {
	holders map[uint64]Mode
	queue   []*waiter
}

// Manager is the lock manager.  All methods are safe for concurrent use.
// Transactions are identified by caller-chosen uint64 ids; a transaction
// must issue its Acquire calls from a single goroutine.
type Manager struct {
	mu      sync.Mutex
	entries map[page.ID]*entry
	// held tracks the pages each transaction holds, for ReleaseAll.
	held map[uint64]map[page.ID]Mode
	// waiting maps a blocked transaction to the page it is queued on; it
	// is the node set of the wait-for graph.
	waiting map[uint64]page.ID
	stats   metrics.LockStats
}

// New creates an empty lock manager.
func New() *Manager {
	return &Manager{
		entries: make(map[page.ID]*entry),
		held:    make(map[uint64]map[page.ID]Mode),
		waiting: make(map[uint64]page.ID),
	}
}

// Stats returns a snapshot of the lock manager counters.
func (m *Manager) Stats() metrics.LockStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Holding returns the mode tx holds on the page and whether it holds one.
func (m *Manager) Holding(tx uint64, id page.ID) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[tx][id]
	return mode, ok
}

// Held returns the number of pages tx currently holds locks on.
func (m *Manager) Held(tx uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tx])
}

// Acquire takes the page lock in the given mode on behalf of tx, blocking
// until it is granted, the context ends, or a deadlock is detected.
// Requests are re-entrant: holding X satisfies a request for S or X,
// holding S satisfies S, and S→X is an upgrade.  Locks are held until
// ReleaseAll.
func (m *Manager) Acquire(ctx context.Context, tx uint64, id page.ID, mode Mode) error {
	m.mu.Lock()
	e := m.entries[id]
	if e == nil {
		e = &entry{holders: make(map[uint64]Mode)}
		m.entries[id] = e
	}

	var w *waiter
	if held, ok := e.holders[tx]; ok {
		if held >= mode {
			m.mu.Unlock()
			return nil
		}
		// Upgrade S→X.
		if len(e.holders) == 1 {
			e.holders[tx] = Exclusive
			m.held[tx][id] = Exclusive
			m.stats.Upgrades++
			m.mu.Unlock()
			return nil
		}
		w = &waiter{tx: tx, mode: Exclusive, upgrade: true, ready: make(chan struct{})}
		// Upgrades queue ahead of plain requests (but behind earlier
		// upgrades): the holder already blocks everything queued.
		i := 0
		for i < len(e.queue) && e.queue[i].upgrade {
			i++
		}
		e.queue = append(e.queue, nil)
		copy(e.queue[i+1:], e.queue[i:])
		e.queue[i] = w
	} else {
		if len(e.queue) == 0 && m.grantableLocked(e, mode) {
			m.grantLocked(e, id, tx, mode)
			m.mu.Unlock()
			return nil
		}
		w = &waiter{tx: tx, mode: mode, ready: make(chan struct{})}
		e.queue = append(e.queue, w)
	}

	// The request blocks: check that granting it could ever happen.
	m.waiting[tx] = id
	if cycle := m.deadlockCycleLocked(tx); cycle != nil {
		delete(m.waiting, tx)
		m.removeWaiterLocked(e, w)
		m.promoteLocked(id, e)
		m.stats.Deadlocks++
		held := make([]page.ID, 0, len(m.held[tx]))
		for hid := range m.held[tx] {
			held = append(held, hid)
		}
		slices.Sort(held)
		m.mu.Unlock()
		return &DeadlockError{Tx: tx, Page: id, Mode: mode, Cycle: cycle, Held: held}
	}
	m.stats.Waits++
	start := time.Now()
	m.mu.Unlock()

	select {
	case <-w.ready:
		m.mu.Lock()
		delete(m.waiting, tx)
		m.stats.WaitTime += time.Since(start)
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		delete(m.waiting, tx)
		m.stats.WaitTime += time.Since(start)
		if w.granted {
			// The lock was handed over concurrently with the
			// cancellation; keep it — the caller will abort and
			// ReleaseAll cleans it up.
			m.mu.Unlock()
			return ctx.Err()
		}
		m.stats.Cancels++
		m.removeWaiterLocked(e, w)
		m.promoteLocked(id, e)
		m.mu.Unlock()
		return ctx.Err()
	}
}

// ReleaseAll releases every lock tx holds (strict two-phase locking: call
// it once, after commit or abort).  Waiters become eligible immediately.
func (m *Manager) ReleaseAll(tx uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id := range m.held[tx] {
		e := m.entries[id]
		if e == nil {
			continue
		}
		delete(e.holders, tx)
		m.promoteLocked(id, e)
	}
	delete(m.held, tx)
}

// grantableLocked reports whether a (non-held, non-queued) request of the
// given mode is compatible with the current holders.
func (m *Manager) grantableLocked(e *entry, mode Mode) bool {
	for _, h := range e.holders {
		if !compatible(h, mode) {
			return false
		}
	}
	return true
}

// grantLocked records the grant and updates the counters.
func (m *Manager) grantLocked(e *entry, id page.ID, tx uint64, mode Mode) {
	e.holders[tx] = mode
	h := m.held[tx]
	if h == nil {
		h = make(map[page.ID]Mode)
		m.held[tx] = h
	}
	h[id] = mode
	if mode == Exclusive {
		m.stats.ExclusiveGrants++
	} else {
		m.stats.SharedGrants++
	}
}

// promoteLocked grants as many queued requests as the holder set allows,
// in FIFO order, and drops the entry when it becomes empty.
func (m *Manager) promoteLocked(id page.ID, e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if w.upgrade {
			// Grantable only once w.tx is the sole remaining holder.
			if len(e.holders) != 1 {
				break
			}
			if _, ok := e.holders[w.tx]; !ok {
				break
			}
			e.holders[w.tx] = Exclusive
			m.held[w.tx][id] = Exclusive
			m.stats.Upgrades++
		} else {
			if !m.grantableLocked(e, w.mode) {
				break
			}
			m.grantLocked(e, id, w.tx, w.mode)
		}
		e.queue = e.queue[1:]
		w.granted = true
		close(w.ready)
	}
	if len(e.holders) == 0 && len(e.queue) == 0 {
		delete(m.entries, id)
	}
}

// removeWaiterLocked unlinks w from the entry's queue (no-op if it was
// already granted and removed).
func (m *Manager) removeWaiterLocked(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// deadlockCycleLocked reports whether start is part of a cycle in the
// wait-for graph, returning the cycle's edges (starting at start) or nil.
// Edges run from each blocked transaction to every transaction that must
// release or yield first: the incompatible holders of the page it waits
// on, and incompatible requests queued ahead of it (the grant order is
// FIFO, so those really do go first).  The DFS path at the moment the
// cycle closes IS the cycle, so capturing it costs nothing on the
// no-deadlock fast path beyond one append/pop per visited node.
func (m *Manager) deadlockCycleLocked(start uint64) []WaitEdge {
	visited := make(map[uint64]bool)
	var path []WaitEdge
	var visit func(tx uint64) bool
	visit = func(tx uint64) bool {
		id, blocked := m.waiting[tx]
		if !blocked {
			return false
		}
		e := m.entries[id]
		if e == nil {
			return false
		}
		var w *waiter
		for _, q := range e.queue {
			if q.tx == tx {
				w = q
				break
			}
		}
		if w == nil {
			return false
		}
		path = append(path, WaitEdge{Tx: tx, Page: id})
		check := func(other uint64) bool {
			if other == tx {
				return false
			}
			if other == start {
				return true
			}
			if visited[other] {
				return false
			}
			visited[other] = true
			return visit(other)
		}
		for htx, hmode := range e.holders {
			if !compatible(hmode, w.mode) && check(htx) {
				return true
			}
		}
		for _, q := range e.queue {
			if q == w {
				break
			}
			if q.tx != tx && !compatible(q.mode, w.mode) && check(q.tx) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if visit(start) {
		return path
	}
	return nil
}
