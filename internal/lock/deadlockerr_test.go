package lock

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/page"
)

// forceDeadlock drives the canonical two-transaction cycle: tx1 holds X
// on page 1, tx2 holds X on page 2, tx1 blocks on page 2, then tx2's
// request for page 1 closes the cycle and is refused.
func forceDeadlock(t *testing.T, m *Manager) error {
	t.Helper()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, page.ID(1), Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, page.ID(2), Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	blocked := make(chan struct{})
	go func() {
		defer wg.Done()
		close(blocked)
		// Blocks until tx2 aborts below.
		if err := m.Acquire(ctx, 1, page.ID(2), Exclusive); err != nil {
			t.Errorf("tx1 acquire after cycle broken: %v", err)
		}
	}()
	<-blocked
	// Wait until tx1 is actually queued on page 2 so the wait-for edge
	// exists.
	for m.Held(1) != 1 || !waitingOn(m, 1, page.ID(2)) {
	}
	err := m.Acquire(ctx, 2, page.ID(1), Exclusive)
	m.ReleaseAll(2)
	wg.Wait()
	m.ReleaseAll(1)
	return err
}

func waitingOn(m *Manager, tx uint64, id page.ID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	got, ok := m.waiting[tx]
	return ok && got == id
}

func TestDeadlockErrorCarriesCycle(t *testing.T) {
	m := New()
	err := forceDeadlock(t, m)
	if err == nil {
		t.Fatal("expected a deadlock")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("errors.Is(err, ErrDeadlock) = false for %v", err)
	}
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("error is not a *DeadlockError: %T %v", err, err)
	}
	if derr.Tx != 2 || derr.Page != page.ID(1) || derr.Mode != Exclusive {
		t.Fatalf("victim fields = %+v", derr)
	}
	// The cycle starts at the victim: tx2 waits on page 1 (held by tx1),
	// tx1 waits on page 2 (held by tx2).
	want := []WaitEdge{{Tx: 2, Page: 1}, {Tx: 1, Page: 2}}
	if len(derr.Cycle) != len(want) {
		t.Fatalf("cycle = %+v, want %+v", derr.Cycle, want)
	}
	for i := range want {
		if derr.Cycle[i] != want[i] {
			t.Fatalf("cycle = %+v, want %+v", derr.Cycle, want)
		}
	}
	if len(derr.Held) != 1 || derr.Held[0] != page.ID(2) {
		t.Fatalf("held = %v, want [2]", derr.Held)
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	m := New()
	err := forceDeadlock(t, m)
	if err == nil {
		t.Fatal("expected a deadlock")
	}
	msg := err.Error()
	// The historical prefix survives for log scrapers...
	if !strings.Contains(msg, "tx 2 waiting for X on page 1: lock: deadlock detected") {
		t.Fatalf("message lost its historical shape: %q", msg)
	}
	// ...and the cycle rides along.
	if !strings.Contains(msg, "cycle: tx 2→page 1, tx 1→page 2") {
		t.Fatalf("message lacks the cycle: %q", msg)
	}
}

func TestDeadlockErrorUpgradeCycle(t *testing.T) {
	// Two S holders both upgrading the same page: the refused one's
	// cycle is the degenerate self-wait through the other holder.
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, page.ID(9), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, page.ID(9), Shared); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(ctx, 1, page.ID(9), Exclusive); err != nil {
			t.Errorf("first upgrader: %v", err)
		}
	}()
	for !waitingOn(m, 1, page.ID(9)) {
	}
	err := m.Acquire(ctx, 2, page.ID(9), Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader got %v, want deadlock", err)
	}
	var derr *DeadlockError
	if !errors.As(err, &derr) {
		t.Fatalf("not structured: %T", err)
	}
	if len(derr.Cycle) == 0 {
		t.Fatal("upgrade deadlock carries no cycle")
	}
	if len(derr.Held) != 1 || derr.Held[0] != page.ID(9) {
		t.Fatalf("held = %v, want [9]", derr.Held)
	}
	m.ReleaseAll(2)
	wg.Wait()
	m.ReleaseAll(1)
}
