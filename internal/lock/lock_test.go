package lock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/face/internal/page"
)

func ctxb() context.Context { return context.Background() }

func mustAcquire(t *testing.T, m *Manager, tx uint64, id page.ID, mode Mode) {
	t.Helper()
	if err := m.Acquire(ctxb(), tx, id, mode); err != nil {
		t.Fatalf("tx %d acquiring %s on page %d: %v", tx, mode, id, err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Shared)
	mustAcquire(t, m, 2, 10, Shared)
	mustAcquire(t, m, 3, 10, Shared)
	if got := m.Stats().SharedGrants; got != 3 {
		t.Fatalf("SharedGrants = %d, want 3", got)
	}
	if got := m.Stats().Waits; got != 0 {
		t.Fatalf("Waits = %d, want 0", got)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	m.ReleaseAll(3)
	if m.Held(1)+m.Held(2)+m.Held(3) != 0 {
		t.Fatal("locks survived ReleaseAll")
	}
}

func TestReentrantAndCoveringGrants(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Exclusive)
	mustAcquire(t, m, 1, 10, Shared)    // X covers S
	mustAcquire(t, m, 1, 10, Exclusive) // re-entrant
	s := m.Stats()
	if s.ExclusiveGrants != 1 || s.SharedGrants != 0 {
		t.Fatalf("grants = %+v, want exactly one exclusive", s)
	}
	if mode, ok := m.Holding(1, 10); !ok || mode != Exclusive {
		t.Fatalf("Holding = %v,%v", mode, ok)
	}
}

func TestExclusiveBlocksAndHandsOver(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Exclusive)

	got := make(chan error, 1)
	go func() { got <- m.Acquire(ctxb(), 2, 10, Exclusive) }()

	// The second acquirer must be blocked, not failed.
	select {
	case err := <-got:
		t.Fatalf("second X acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatalf("handed-over acquire: %v", err)
	}
	s := m.Stats()
	if s.Waits != 1 || s.WaitTime <= 0 {
		t.Fatalf("stats = %+v, want one timed wait", s)
	}
}

func TestSoleHolderUpgradesInPlace(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Shared)
	mustAcquire(t, m, 1, 10, Exclusive)
	if mode, _ := m.Holding(1, 10); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
	if s := m.Stats(); s.Upgrades != 1 || s.Waits != 0 {
		t.Fatalf("stats = %+v, want one immediate upgrade", s)
	}
}

// TestForcedDeadlockExactlyOneVictim builds the classic two-transaction
// cycle (T1: X(A) then X(B); T2: X(B) then X(A)) and requires that exactly
// one of them is refused with ErrDeadlock while the other completes.
func TestForcedDeadlockExactlyOneVictim(t *testing.T) {
	m := New()
	const a, b = page.ID(1), page.ID(2)
	mustAcquire(t, m, 1, a, Exclusive)
	mustAcquire(t, m, 2, b, Exclusive)

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err := m.Acquire(ctxb(), 1, b, Exclusive)
		if err != nil {
			m.ReleaseAll(1)
		}
		errs <- err
	}()
	// Let T1 queue first so T2's request is the one closing the cycle.
	time.Sleep(10 * time.Millisecond)
	go func() {
		defer wg.Done()
		err := m.Acquire(ctxb(), 2, a, Exclusive)
		if err != nil {
			m.ReleaseAll(2)
		}
		errs <- err
	}()
	wg.Wait()
	close(errs)

	var deadlocks, ok int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || ok != 1 {
		t.Fatalf("deadlocks=%d ok=%d, want exactly one victim", deadlocks, ok)
	}
	if s := m.Stats(); s.Deadlocks != 1 {
		t.Fatalf("Deadlocks stat = %d, want 1", s.Deadlocks)
	}
}

// TestUpgradeDeadlock: two transactions both hold S and both request X.
// Neither upgrade can ever be granted, so the second requester must be
// refused immediately rather than both waiting forever.
func TestUpgradeDeadlock(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Shared)
	mustAcquire(t, m, 2, 10, Shared)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctxb(), 1, 10, Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	if err := m.Acquire(ctxb(), 2, 10, Exclusive); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
	if mode, _ := m.Holding(1, 10); mode != Exclusive {
		t.Fatal("surviving upgrader does not hold X")
	}
	m.ReleaseAll(1)
}

// TestUpgradeStorm hammers one page with transactions that all read then
// upgrade.  Deadlock victims must retry from scratch; every transaction
// must eventually complete exactly once.
func TestUpgradeStorm(t *testing.T) {
	m := New()
	const goroutines = 8
	var completed atomic.Int64
	// barrier makes every transaction hold S simultaneously before the
	// first upgrade attempt, so the storm actually collides.
	var barrier sync.WaitGroup
	barrier.Add(goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			first := true
			for {
				if err := m.Acquire(ctxb(), tx, 77, Shared); err != nil {
					m.ReleaseAll(tx)
					continue
				}
				if first {
					first = false
					barrier.Done()
					barrier.Wait()
				}
				if err := m.Acquire(ctxb(), tx, 77, Exclusive); err != nil {
					if !errors.Is(err, ErrDeadlock) {
						t.Errorf("tx %d: %v", tx, err)
						m.ReleaseAll(tx)
						return
					}
					m.ReleaseAll(tx)
					continue
				}
				completed.Add(1)
				m.ReleaseAll(tx)
				return
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if completed.Load() != goroutines {
		t.Fatalf("completed %d upgrades, want %d", completed.Load(), goroutines)
	}
	if s := m.Stats(); s.Deadlocks == 0 {
		t.Fatalf("upgrade storm produced no deadlocks: %+v", s)
	}
}

// TestContextCancellationUnblocksWaiter: a queued waiter whose context is
// cancelled returns promptly, and the queue keeps moving for everyone
// else.
func TestContextCancellationUnblocksWaiter(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Exclusive)

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- m.Acquire(ctx, 2, 10, Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	// A third transaction queues behind the doomed waiter.
	third := make(chan error, 1)
	go func() { third <- m.Acquire(ctxb(), 3, 10, Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter did not unblock")
	}
	if s := m.Stats(); s.Cancels != 1 {
		t.Fatalf("Cancels = %d, want 1", s.Cancels)
	}

	// The holder releases; the third transaction (not the cancelled one)
	// must receive the lock.
	m.ReleaseAll(1)
	select {
	case err := <-third:
		if err != nil {
			t.Fatalf("third waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queue stalled after a cancelled waiter was removed")
	}
	if mode, ok := m.Holding(3, 10); !ok || mode != Exclusive {
		t.Fatalf("third waiter holds %v,%v", mode, ok)
	}
	m.ReleaseAll(3)
}

// TestFIFOPreventsWriterStarvation: with readers arriving continuously, a
// queued writer still gets the lock as soon as the current readers drain.
func TestFIFOPreventsWriterStarvation(t *testing.T) {
	m := New()
	mustAcquire(t, m, 1, 10, Shared)

	wgot := make(chan error, 1)
	go func() { wgot <- m.Acquire(ctxb(), 2, 10, Exclusive) }()
	time.Sleep(10 * time.Millisecond)

	// A late reader must queue behind the writer, not join tx 1.
	rgot := make(chan error, 1)
	go func() { rgot <- m.Acquire(ctxb(), 3, 10, Shared) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-rgot:
		t.Fatalf("late reader jumped the writer queue: %v", err)
	default:
	}

	m.ReleaseAll(1)
	if err := <-wgot; err != nil {
		t.Fatalf("writer: %v", err)
	}
	// The late reader is still queued behind the writer's hold.
	select {
	case err := <-rgot:
		t.Fatalf("reader granted while writer holds X: %v", err)
	default:
	}
	m.ReleaseAll(2)
	if err := <-rgot; err != nil {
		t.Fatalf("reader after writer released: %v", err)
	}
	m.ReleaseAll(3)
}

// TestConcurrentDisjointThroughput is a smoke test under the race
// detector: many transactions over many pages, mixed modes, no external
// synchronization beyond the manager itself.
func TestConcurrentDisjointThroughput(t *testing.T) {
	m := New()
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			tx := uint64(1000 + seed)
			for i := 0; i < iters; i++ {
				own := page.ID(seed*iters + i + 1)
				shared := page.ID(7)
				if err := m.Acquire(ctxb(), tx, shared, Shared); err != nil {
					m.ReleaseAll(tx)
					continue
				}
				if err := m.Acquire(ctxb(), tx, own, Exclusive); err != nil {
					m.ReleaseAll(tx)
					continue
				}
				m.ReleaseAll(tx)
			}
		}(g)
	}
	wg.Wait()
	if held := m.Held(1000); held != 0 {
		t.Fatalf("locks leaked: %d", held)
	}
	if s := m.Stats(); s.Grants() == 0 {
		t.Fatalf("no grants recorded: %+v", s)
	}
}
