package face

// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the core cache managers.  They run
// at the QuickOptions scale so `go test -bench=. -benchmem` completes in a
// few minutes; the facebench command runs the same experiments at the
// larger default scale.

import (
	"context"
	"sync"
	"testing"

	"github.com/reprolab/face/internal/bench"
	"github.com/reprolab/face/internal/device"
	"github.com/reprolab/face/internal/engine"
	facecache "github.com/reprolab/face/internal/face"
	"github.com/reprolab/face/internal/page"
)

var (
	goldenOnce sync.Once
	goldenDB   *bench.Golden
	goldenErr  error
)

func benchGolden(b *testing.B) *bench.Golden {
	b.Helper()
	goldenOnce.Do(func() {
		goldenDB, goldenErr = bench.BuildGolden(bench.QuickOptions())
	})
	if goldenErr != nil {
		b.Fatal(goldenErr)
	}
	return goldenDB
}

// BenchmarkTable1DeviceCharacteristics regenerates Table 1 (device price
// and performance characteristics).
func BenchmarkTable1DeviceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1DeviceCharacteristics()
		if len(rows) != 5 {
			b.Fatal("unexpected Table 1 size")
		}
	}
}

// BenchmarkTable3HitAndWriteReduction regenerates Table 3 (flash cache hit
// ratio and write reduction vs cache size).
func BenchmarkTable3HitAndWriteReduction(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Table3HitAndWriteReduction(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4UtilizationAndIOPS regenerates Table 4 (flash device
// utilization and I/O throughput vs cache size).
func BenchmarkTable4UtilizationAndIOPS(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Table4UtilizationAndIOPS(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4ThroughputMLC regenerates Figure 4(a): throughput vs
// cache size on the MLC SSD, including HDD-only and SSD-only references.
func BenchmarkFigure4ThroughputMLC(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Figure4Throughput(g.Options().MLCProfile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4ThroughputSLC regenerates Figure 4(b): throughput vs
// cache size on the SLC SSD.
func BenchmarkFigure4ThroughputSLC(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Figure4Throughput(g.Options().SLCProfile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5DRAMvsFlash regenerates Table 5 (equal-cost DRAM vs flash
// increments).
func BenchmarkTable5DRAMvsFlash(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Table5DRAMvsFlash(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5DiskScaling regenerates Figure 5 (throughput vs number of
// RAID-0 disks).
func BenchmarkFigure5DiskScaling(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Figure5DiskScaling(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6RecoveryTime regenerates Table 6 (restart time after a
// crash vs checkpoint interval).
func BenchmarkTable6RecoveryTime(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Table6RecoveryTime(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6PostRestartThroughput regenerates Figure 6 (throughput
// timeline after restart).
func BenchmarkFigure6PostRestartThroughput(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Figure6PostRestartThroughput(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGroupSize measures the design-choice ablation for the
// replacement group size (Section 3.3).
func BenchmarkAblationGroupSize(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.AblationGroupSize(0.10, []int{1, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAsyncIO keeps the sync-vs-async pipeline comparison in
// the benchmark smoke run so the ablation code cannot rot.
func BenchmarkAblationAsyncIO(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.AblationAsyncIO(0.10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLockManager keeps the single-writer vs 2PL scheduler
// comparison in the benchmark smoke run so the multi-terminal driver and
// group-commit path cannot rot.
func BenchmarkAblationLockManager(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.AblationLockManager([]int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShards keeps the striped-pool vs single-mutex hot-path
// comparison in the benchmark smoke run so the sharded structures cannot
// rot.
func BenchmarkAblationShards(b *testing.B) {
	g := benchGolden(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.AblationShards([]int{1, 4}, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the cache managers -------------------------------

func stagePages(b *testing.B, ext facecache.Extension, n int) {
	b.Helper()
	img := page.NewBuf()
	for i := 0; i < n; i++ {
		id := page.ID(i%4096 + 1)
		img.Init(id, page.TypeHeap)
		img.SetLSN(page.LSN(i + 1))
		if err := ext.StageIn(id, img, true, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVFIFOStageIn measures the FaCE mvFIFO stage-in path (sequential
// flash writes).
func BenchmarkMVFIFOStageIn(b *testing.B) {
	dev := device.New("flash", device.ProfileSamsung470, 4096)
	disk := device.NewArray("disk", device.ProfileCheetah15K, 8, 1<<16)
	cache, err := facecache.NewMVFIFO(facecache.MVFIFOConfig{
		Dev: dev, Frames: 2048, GroupSize: 64, SecondChance: true,
		DiskWrite: func(id page.ID, data page.Buf) error { return disk.WriteAt(int64(id), data) },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	stagePages(b, cache, b.N)
}

// BenchmarkLCStageIn measures the LC baseline stage-in path (random flash
// writes).
func BenchmarkLCStageIn(b *testing.B) {
	dev := device.New("flash", device.ProfileSamsung470, 4096)
	disk := device.NewArray("disk", device.ProfileCheetah15K, 8, 1<<16)
	cache, err := facecache.NewLC(facecache.LCConfig{
		Dev: dev, Frames: 2048,
		DiskWrite: func(id page.ID, data page.Buf) error { return disk.WriteAt(int64(id), data) },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	stagePages(b, cache, b.N)
}

// BenchmarkConcurrentViews measures parallel read-only transactions
// through the public View API: readers share the scheduler's read lock and
// the latched buffer pool.
func BenchmarkConcurrentViews(b *testing.B) {
	db, err := Open(
		WithDevices(NewDiskArray("data", 8, 1<<16), NewDisk("log", 1<<18)),
		WithFlashDevice(NewSSD("flash", 4096)),
		WithPolicy(PolicyFaCEGSC),
		WithBufferPages(128),
		WithFlashFrames(1024),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	var ids []PageID
	err = db.Update(ctx, func(tx *Tx) error {
		for i := 0; i < 2048; i++ {
			id, err := tx.Alloc(TypeHeap)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			id := ids[i%len(ids)]
			err := db.View(ctx, func(tx *Tx) error {
				return tx.Read(id, func(buf PageBuf) error { return nil })
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEngineTransaction measures the end-to-end cost of a small
// read-modify-write transaction through the engine with a FaCE cache.
func BenchmarkEngineTransaction(b *testing.B) {
	db, err := engine.Open(engine.Config{
		DataDev:     device.NewArray("data", device.ProfileCheetah15K, 8, 1<<16),
		LogDev:      device.New("log", device.ProfileCheetah15K, 1<<18),
		FlashDev:    device.New("flash", device.ProfileSamsung470, 4096),
		BufferPages: 128,
		Policy:      engine.PolicyFaCEGSC,
		FlashFrames: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tx, _ := db.Begin()
	var ids []page.ID
	for i := 0; i < 2048; i++ {
		id, err := tx.Alloc(page.TypeHeap)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		id := ids[i%len(ids)]
		if err := tx.Modify(id, func(buf page.Buf) error {
			buf.Payload()[0]++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
